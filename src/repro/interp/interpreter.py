"""The IR interpreter.

Execution is straight-line per method (the IR has no branches; conditional
behaviour lives in intrinsics / natives), with dynamic dispatch on the
receiver's runtime class and a bounded step budget to guard against runaway
recursion in hand-written models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence

from repro.interp.errors import (
    CallDepthExceeded,
    InterpreterError,
    NullPointerError,
    StepLimitExceeded,
    UnknownMethodError,
)
from repro.interp.heap import Heap, HeapObject
from repro.interp.natives import NativeRegistry, default_natives
from repro.lang.program import CONSTRUCTOR, MethodDef, MethodRef, Program, RECEIVER
from repro.lang.statements import Assign, Call, Const, Load, New, Return, Statement, Store

#: Class name whose instances carry real Python-list storage.
ARRAY_CLASS = "ObjectArray"


@dataclass
class ExecutionResult:
    """Outcome of executing a single method: its return value and final locals."""

    value: Any
    environment: Dict[str, Any] = field(default_factory=dict)


class Interpreter:
    """Executes IR programs concretely.

    Parameters
    ----------
    program:
        The program to execute (library plus any driver classes).
    natives:
        Hook registry; defaults to :func:`default_natives`.
    max_steps:
        Total statement budget across the whole execution.
    max_depth:
        Maximum call-stack depth.
    """

    def __init__(
        self,
        program: Program,
        natives: Optional[NativeRegistry] = None,
        max_steps: int = 100_000,
        max_depth: int = 200,
    ):
        self.program = program
        self.natives = natives if natives is not None else default_natives()
        self.max_steps = max_steps
        self.max_depth = max_depth
        self.heap = Heap()
        self._steps = 0
        self._frames: list = []

    # ------------------------------------------------------------------ observers
    #: Subclasses that override the observer hooks below set this True to
    #: opt into the instrumented execution loop; the witness-oracle hot path
    #: (millions of interpreted statements per inference run) stays on the
    #: plain loop and pays nothing.
    observing: bool = False

    @property
    def current_method(self) -> Optional[MethodRef]:
        """The method whose body is currently executing (``None`` outside any).

        Only tracked while :attr:`observing` is True.
        """
        return self._frames[-1] if self._frames else None

    def on_allocate(self, obj: HeapObject) -> None:
        """Observer hook: *obj* was just allocated (constructor not yet run).

        The allocating method is :attr:`current_method`.  Subclasses (e.g. the
        provenance-tracking interpreter of :mod:`repro.diff.truth`) override
        this; only called when :attr:`observing` is True.
        """

    def before_statement(self, ref: MethodRef, index: int, statement: Statement, env: Dict[str, Any]) -> None:
        """Observer hook: statement *index* of *ref* is about to execute.

        *env* holds the current local environment, so hooks can inspect the
        runtime values a statement is about to consume.  Only called when
        :attr:`observing` is True.
        """

    def after_statement(self, ref: MethodRef, index: int, statement: Statement, env: Dict[str, Any]) -> None:
        """Observer hook: statement *index* of *ref* has just executed.

        By this point *env* holds the statement's effects (a call's return
        value is bound to its target variable), which is what lets the
        library-boundary tracer of :mod:`repro.diff.truth` attribute returned
        objects to the call that produced them.  Any frames pushed by the
        statement itself have already been popped.  Only called when
        :attr:`observing` is True.
        """

    # ------------------------------------------------------------------ entry points
    def execute_static(self, class_name: str, method_name: str, args: Sequence[Any] = ()) -> ExecutionResult:
        """Execute a static method and return its result and final locals."""
        ref = self.program.resolve_method(class_name, method_name)
        if ref is None:
            raise UnknownMethodError(f"no method {class_name}.{method_name}")
        method = self.program.method_def(ref)
        if not method.is_static:
            raise InterpreterError(f"{ref} is not static")
        return self._execute_body(ref, method, receiver=None, args=args, depth=0)

    def call(self, receiver: HeapObject, method_name: str, args: Sequence[Any] = ()) -> Any:
        """Invoke an instance method on *receiver* (dynamic dispatch) and return its value."""
        return self._invoke(receiver, method_name, list(args), depth=0)

    def allocate(self, class_name: str, args: Sequence[Any] = ()) -> HeapObject:
        """Allocate an object of *class_name* and run its constructor, if any."""
        return self._allocate(class_name, list(args), depth=0)

    # ------------------------------------------------------------------ internals
    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise StepLimitExceeded(f"exceeded {self.max_steps} interpreted statements")

    def _allocate(self, class_name: str, args: Sequence[Any], depth: int) -> HeapObject:
        if class_name == ARRAY_CLASS:
            obj = self.heap.allocate_array()
        else:
            obj = self.heap.allocate(class_name)
        if self.observing:
            self.on_allocate(obj)
        if self.program.has_class(class_name):
            constructor = self.program.resolve_method(class_name, CONSTRUCTOR)
            if constructor is not None:
                self._dispatch(constructor, obj, args, depth)
        return obj

    def _invoke(self, receiver: Any, method_name: str, args: Sequence[Any], depth: int) -> Any:
        if receiver is None:
            raise NullPointerError(f"call to {method_name!r} on null")
        if not isinstance(receiver, HeapObject):
            raise InterpreterError(f"call to {method_name!r} on non-reference value {receiver!r}")
        ref = self.program.resolve_method(receiver.class_name, method_name)
        if ref is None:
            hook = self.natives.lookup(receiver.class_name, method_name)
            if hook is not None:
                return hook(self, receiver, args)
            raise UnknownMethodError(f"no method {method_name!r} on class {receiver.class_name!r}")
        return self._dispatch(ref, receiver, args, depth)

    def _invoke_static(self, class_name: str, method_name: str, args: Sequence[Any], depth: int) -> Any:
        hook = self.natives.lookup(class_name, method_name)
        ref = self.program.resolve_method(class_name, method_name) if self.program.has_class(class_name) else None
        if ref is not None:
            method = self.program.method_def(ref)
            if not method.is_native or hook is None:
                return self._dispatch(ref, None, args, depth)
        if hook is not None:
            return hook(self, None, args)
        raise UnknownMethodError(f"no static method {class_name}.{method_name}")

    def _dispatch(self, ref: MethodRef, receiver: Any, args: Sequence[Any], depth: int) -> Any:
        method = self.program.method_def(ref)
        hook = self.natives.lookup(ref.class_name, ref.method_name)
        if hook is not None:
            # Intrinsic or native: the hook provides the concrete behaviour.
            return hook(self, receiver, args)
        if method.is_native:
            raise UnknownMethodError(f"native method {ref} has no registered hook")
        return self._execute_body(ref, method, receiver, args, depth).value

    def _execute_body(
        self,
        ref: MethodRef,
        method: MethodDef,
        receiver: Any,
        args: Sequence[Any],
        depth: int,
    ) -> ExecutionResult:
        if depth > self.max_depth:
            raise CallDepthExceeded(f"call depth exceeded {self.max_depth} at {ref}")
        env: Dict[str, Any] = {}
        if not method.is_static:
            env[RECEIVER] = receiver
        params = method.params
        for index, param in enumerate(params):
            env[param.name] = args[index] if index < len(args) else None

        result: Any = None
        if not self.observing:
            for statement in method.body:
                self._tick()
                done, result = self._execute_statement(statement, env, depth)
                if done:
                    break
            return ExecutionResult(value=result, environment=env)

        self._frames.append(ref)
        try:
            for index, statement in enumerate(method.body):
                self._tick()
                self.before_statement(ref, index, statement, env)
                done, result = self._execute_statement(statement, env, depth)
                self.after_statement(ref, index, statement, env)
                if done:
                    break
        finally:
            self._frames.pop()
        return ExecutionResult(value=result, environment=env)

    def _execute_statement(self, statement: Statement, env: Dict[str, Any], depth: int):
        if isinstance(statement, Assign):
            env[statement.target] = self._read(env, statement.source)
            return False, None
        if isinstance(statement, Const):
            env[statement.target] = statement.value
            return False, None
        if isinstance(statement, New):
            args = [self._read(env, a) for a in statement.args]
            env[statement.target] = self._allocate(statement.class_name, args, depth + 1)
            return False, None
        if isinstance(statement, Store):
            base = self._read(env, statement.base)
            if base is None:
                raise NullPointerError(f"store to field {statement.field_name!r} of null")
            if not isinstance(base, HeapObject):
                raise InterpreterError(f"store to field of non-reference value {base!r}")
            base.set_field(statement.field_name, self._read(env, statement.source))
            return False, None
        if isinstance(statement, Load):
            base = self._read(env, statement.base)
            if base is None:
                raise NullPointerError(f"load of field {statement.field_name!r} from null")
            if not isinstance(base, HeapObject):
                raise InterpreterError(f"load of field from non-reference value {base!r}")
            env[statement.target] = base.get_field(statement.field_name)
            return False, None
        if isinstance(statement, Call):
            args = [self._read(env, a) for a in statement.args]
            if statement.base is None:
                class_name, _, method_name = statement.method_name.rpartition(".")
                if not class_name:
                    raise InterpreterError(
                        f"static call {statement.method_name!r} must be qualified as Class.method"
                    )
                value = self._invoke_static(class_name, method_name, args, depth + 1)
            else:
                receiver = self._read(env, statement.base)
                value = self._invoke(receiver, statement.method_name, args, depth + 1)
            if statement.target is not None:
                env[statement.target] = value
            return False, None
        if isinstance(statement, Return):
            value = None if statement.value is None else self._read(env, statement.value)
            return True, value
        raise InterpreterError(f"unknown statement type {type(statement).__name__}")

    @staticmethod
    def _read(env: Dict[str, Any], name: str) -> Any:
        if name not in env:
            raise InterpreterError(f"read of undefined variable {name!r}")
        return env[name]
