"""Runtime errors raised by the interpreter.

These mirror the Java exceptions that make synthesized unit tests fail in the
paper (``NullPointerException``, ``IndexOutOfBoundsException``,
``NoSuchElementException``): the noisy oracle treats any raised exception as
the unit test *failing*, i.e. the candidate specification is (conservatively)
rejected.
"""

from __future__ import annotations


class InterpreterError(Exception):
    """Base class for all runtime errors raised while executing IR code."""


class NullPointerError(InterpreterError):
    """A field access or method call was attempted on ``null``."""


class IndexOutOfBounds(InterpreterError):
    """An array or collection index was outside the valid range."""


class NoSuchElement(InterpreterError):
    """An iterator or queue access found no element."""


class UnsupportedOperation(InterpreterError):
    """The operation is not supported by the receiver (e.g. immutable views)."""


class UnknownMethodError(InterpreterError):
    """A call could not be resolved to any method definition or native hook."""


class StepLimitExceeded(InterpreterError):
    """Execution exceeded the configured statement budget."""


class CallDepthExceeded(InterpreterError):
    """Execution exceeded the configured call-stack depth."""
