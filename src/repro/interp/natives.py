"""Native hooks and intrinsics for the interpreter.

Two related mechanisms are provided, mirroring how the JVM treats library
internals:

* **Natives** -- methods marked ``is_native`` in the IR have no body visible
  to the static analysis (the analogue of JNI methods such as
  ``System.arraycopy``).  The interpreter executes them through Python hooks
  registered here; the static analysis sees nothing, which is the paper's
  source of *unsoundness* when analyzing library implementations directly.

* **Intrinsics** -- methods that *do* have an IR body (the body is the
  collapsed-array abstraction the static analysis uses, e.g. a single
  ``$elem`` pseudo-field standing for all array slots) but whose dynamic
  behaviour is overridden by a Python hook so that executions are realistic
  (real indexing, real bounds checks).  This mirrors the paper's treatment of
  arrays: "our points-to analysis ... collapses arrays into a single field",
  while the concrete execution of course does not.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Sequence, Tuple, TYPE_CHECKING

from repro.interp.errors import IndexOutOfBounds, InterpreterError, NullPointerError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.interp.heap import HeapObject
    from repro.interp.interpreter import Interpreter

NativeHook = Callable[["Interpreter", Any, Sequence[Any]], Any]


class NativeRegistry:
    """Maps ``(class_name, method_name)`` to Python hooks."""

    def __init__(self) -> None:
        self._hooks: Dict[Tuple[str, str], NativeHook] = {}

    def register(self, class_name: str, method_name: str, hook: NativeHook) -> None:
        self._hooks[(class_name, method_name)] = hook

    def lookup(self, class_name: str, method_name: str) -> NativeHook | None:
        return self._hooks.get((class_name, method_name))

    def copy(self) -> "NativeRegistry":
        registry = NativeRegistry()
        registry._hooks = dict(self._hooks)
        return registry


# --------------------------------------------------------------------------- helpers
def _require_array(obj: Any, operation: str) -> "HeapObject":
    if obj is None:
        raise NullPointerError(f"{operation} on null array")
    if getattr(obj, "array_elements", None) is None:
        raise InterpreterError(f"{operation} on non-array object {obj!r}")
    return obj


def _as_index(value: Any, operation: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise InterpreterError(f"{operation} requires an int index, got {value!r}")
    return value


# --------------------------------------------------------------- ObjectArray intrinsics
def _array_get(interp: "Interpreter", receiver: Any, args: Sequence[Any]) -> Any:
    array = _require_array(receiver, "aget")
    index = _as_index(args[0], "aget")
    elements = array.array_elements
    if index < 0 or index >= len(elements):
        raise IndexOutOfBounds(f"index {index} out of bounds for length {len(elements)}")
    return elements[index]


def _array_set(interp: "Interpreter", receiver: Any, args: Sequence[Any]) -> Any:
    array = _require_array(receiver, "aset")
    index = _as_index(args[0], "aset")
    elements = array.array_elements
    if index < 0 or index >= len(elements):
        raise IndexOutOfBounds(f"index {index} out of bounds for length {len(elements)}")
    elements[index] = args[1]
    return None


def _array_append(interp: "Interpreter", receiver: Any, args: Sequence[Any]) -> Any:
    array = _require_array(receiver, "aappend")
    array.array_elements.append(args[0])
    return None


def _array_insert(interp: "Interpreter", receiver: Any, args: Sequence[Any]) -> Any:
    array = _require_array(receiver, "ainsert")
    index = _as_index(args[0], "ainsert")
    elements = array.array_elements
    if index < 0 or index > len(elements):
        raise IndexOutOfBounds(f"index {index} out of bounds for insertion into length {len(elements)}")
    elements.insert(index, args[1])
    return None


def _array_remove(interp: "Interpreter", receiver: Any, args: Sequence[Any]) -> Any:
    array = _require_array(receiver, "aremove")
    index = _as_index(args[0], "aremove")
    elements = array.array_elements
    if index < 0 or index >= len(elements):
        raise IndexOutOfBounds(f"index {index} out of bounds for length {len(elements)}")
    return elements.pop(index)

def _array_last(interp: "Interpreter", receiver: Any, args: Sequence[Any]) -> Any:
    array = _require_array(receiver, "alast")
    if not array.array_elements:
        raise IndexOutOfBounds("alast on empty array")
    return array.array_elements[-1]


def _array_remove_last(interp: "Interpreter", receiver: Any, args: Sequence[Any]) -> Any:
    array = _require_array(receiver, "aremovelast")
    if not array.array_elements:
        raise IndexOutOfBounds("aremovelast on empty array")
    return array.array_elements.pop()


def _array_length(interp: "Interpreter", receiver: Any, args: Sequence[Any]) -> Any:
    array = _require_array(receiver, "alength")
    return len(array.array_elements)


def _array_range(interp: "Interpreter", receiver: Any, args: Sequence[Any]) -> Any:
    array = _require_array(receiver, "arange")
    start = _as_index(args[0], "arange")
    end = _as_index(args[1], "arange")
    elements = array.array_elements
    if start < 0 or end > len(elements) or start > end:
        raise IndexOutOfBounds(f"range [{start}, {end}) out of bounds for length {len(elements)}")
    result = interp.heap.allocate_array()
    result.array_elements = list(elements[start:end])
    return result


# ----------------------------------------------------------------------- System natives
def _system_arraycopy(interp: "Interpreter", receiver: Any, args: Sequence[Any]) -> Any:
    source = _require_array(args[0], "arraycopy")
    destination = _require_array(args[1], "arraycopy")
    destination.array_elements.extend(source.array_elements)
    return None


def default_natives() -> NativeRegistry:
    """Registry with the hooks used by the bundled library models."""
    registry = NativeRegistry()
    registry.register("ObjectArray", "aget", _array_get)
    registry.register("ObjectArray", "aset", _array_set)
    registry.register("ObjectArray", "aappend", _array_append)
    registry.register("ObjectArray", "ainsert", _array_insert)
    registry.register("ObjectArray", "aremove", _array_remove)
    registry.register("ObjectArray", "alast", _array_last)
    registry.register("ObjectArray", "aremovelast", _array_remove_last)
    registry.register("ObjectArray", "alength", _array_length)
    registry.register("ObjectArray", "arange", _array_range)
    registry.register("System", "arraycopy", _system_arraycopy)
    return registry
