"""Reference interpreter for the IR.

The interpreter provides the *blackbox access* to library code that the
paper's specification-inference algorithm assumes: the ability to execute
sequences of library calls on chosen inputs and observe the resulting heap
(in particular, whether two variables refer to the same object).  It plays
the role the JVM plays for the original Atlas tool.
"""

from repro.interp.errors import (
    CallDepthExceeded,
    IndexOutOfBounds,
    InterpreterError,
    NoSuchElement,
    NullPointerError,
    StepLimitExceeded,
    UnknownMethodError,
    UnsupportedOperation,
)
from repro.interp.heap import Heap, HeapObject
from repro.interp.interpreter import ExecutionResult, Interpreter
from repro.interp.natives import NativeRegistry, default_natives

__all__ = [
    "CallDepthExceeded",
    "ExecutionResult",
    "Heap",
    "HeapObject",
    "IndexOutOfBounds",
    "Interpreter",
    "InterpreterError",
    "NativeRegistry",
    "NoSuchElement",
    "NullPointerError",
    "StepLimitExceeded",
    "UnknownMethodError",
    "UnsupportedOperation",
    "default_natives",
]
