"""The repair engine: fuzz divergences -> repaired, republished specifications.

``RepairEngine.repair`` is the closing arc of the fuzz -> learn -> serve
loop:

1. **Ingest** a :class:`~repro.diff.runner.FuzzReport` (the in-memory object
   or the JSON document ``repro fuzz --out`` wrote) and keep the divergences
   of its primary pipeline; spurious flows are carried along as telemetry but
   never repaired -- they are imprecision, not unsoundness.
2. **Plan**: replay each counterexample through the concrete interpreter's
   boundary tracer (:func:`repro.diff.truth.trace_library_calls`) and
   reconstruct the targeted oracle words the current automaton wrongly
   rejects (:mod:`repro.repair.words`); group words by the library classes
   they implicate.
3. **Re-learn** only the implicated clusters: each cluster job runs
   :meth:`repro.learn.pipeline.Atlas.run_cluster` in ``"targeted"`` mode with
   the words injected, warm-started from the persistent oracle cache, fanned
   across the engine's Serial/Parallel task executors (parallel repair is
   bit-identical to serial: per-cluster seeds derive from the plan, results
   merge in cluster order, and the oracle is a pure function).
4. **Publish**: the repaired automaton (base automaton unioned with the
   re-learned cluster automata) becomes a **new version** in the
   :class:`~repro.service.store.SpecStore`; the record's provenance names the
   counterexamples and words that drove the repair, and a running
   ``repro serve`` daemon hot-reloads it with zero downtime.
5. **Verify** (optional): re-fuzz the repaired specification over the
   originating families and seeds and assert the divergences are gone.
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.diff.checker import MISSED_FLOW, DiffOutcome
from repro.diff.families import generate_scenario
from repro.diff.runner import FuzzConfig, FuzzReport, run_fuzz
from repro.diff.truth import ConcreteExecutionError, trace_library_calls
from repro.engine.cache import encode_word, open_oracle_cache, program_fingerprint
from repro.engine.events import (
    CacheFlushed,
    EventSink,
    MethodRelearned,
    NullSink,
    RepairStarted,
    RepairVerified,
    SpecRepaired,
)
from repro.engine.executor import make_task_executor
from repro.engine.persist import fsa_to_dict
from repro.learn.oracle import OracleStats
from repro.learn.pipeline import Atlas, AtlasConfig, AtlasResult, ClusterResult, word_sort_key
from repro.library.registry import build_library_program, build_spec_interface
from repro.obs import trace as _trace
from repro.repair.words import MAX_CALLS, MAX_WORDS, extract_words, word_classes
from repro.service.store import SpecRecord, SpecStore
from repro.specs.codegen import generate_code_fragments
from repro.specs.fsa import FSA, fsa_union
from repro.specs.variables import SpecVariable

Word = Tuple[SpecVariable, ...]

#: pipelines whose specification set can be repaired (``implementation`` runs
#: the library itself -- there is no specification to fix)
REPAIRABLE_PIPELINES = ("ground_truth", "handwritten", "store")

CACHE_FILENAME = "oracle-cache.jsonl"  # same file the InferenceEngine shares


@dataclass(frozen=True)
class RepairConfig:
    """Knobs of one repair run (everything that determines its outcome)."""

    seed: int = 2018
    workers: int = 0
    max_calls: int = MAX_CALLS  # word-extraction depth (library calls spanned)
    max_words: int = MAX_WORDS  # candidate words per divergence


@dataclass
class DivergenceRepair:
    """One ingested divergence and what the planner made of it."""

    program: str
    family: str
    signature: str
    words: Tuple[Word, ...] = ()
    reason: str = ""  # why no candidate words exist ("" when repairable)
    repaired: bool = False  # the final automaton accepts >= 1 of its words

    def to_dict(self) -> Dict:
        return {
            "program": self.program,
            "family": self.family,
            "signature": self.signature,
            "words": [list(encode_word(word)) for word in self.words],
            "reason": self.reason,
            "repaired": self.repaired,
        }


@dataclass
class RepairPlan:
    """The planner's output: per-divergence words, grouped into clusters."""

    pipeline: str
    divergences: List[DivergenceRepair]
    clusters: List[Tuple[Tuple[str, ...], Tuple[Word, ...]]]  # (classes, words)
    spurious: Dict[str, int] = field(default_factory=dict)

    @property
    def words(self) -> Tuple[Word, ...]:
        seen: Set[Word] = set()
        for _classes, words in self.clusters:
            seen.update(words)
        return tuple(sorted(seen, key=word_sort_key))

    @property
    def repairable(self) -> List[DivergenceRepair]:
        return [divergence for divergence in self.divergences if divergence.words]

    @property
    def unrepairable(self) -> List[DivergenceRepair]:
        return [divergence for divergence in self.divergences if not divergence.words]


@dataclass
class MethodRepair:
    """One re-learned cluster: the implicated classes and their new automaton."""

    classes: Tuple[str, ...]
    words: Tuple[Word, ...]  # injected candidates
    result: ClusterResult  # positives = the oracle-confirmed subset
    elapsed_seconds: float = 0.0


@dataclass
class RepairOutcome:
    """Everything one ``RepairEngine.repair`` call did."""

    plan: RepairPlan
    base: str  # spec id, or the name of a non-store pipeline
    repairs: List[MethodRepair]
    fsa: FSA  # the repaired automaton (== the base automaton on a no-op)
    record: Optional[SpecRecord]  # the published store version (None on no-op)
    oracle_stats: OracleStats
    executor: str
    elapsed_seconds: float = 0.0
    verification: Optional[FuzzReport] = None

    @property
    def no_op(self) -> bool:
        """True when nothing was re-learned and no version was published."""
        return self.record is None and not self.repairs

    @property
    def verified(self) -> bool:
        return self.verification is not None and not self.verification.diverged

    def canonical(self) -> Dict:
        """The timing-free encoding serial and parallel repairs share."""
        return {
            "pipeline": self.plan.pipeline,
            "base": self.base,
            "divergences": [divergence.to_dict() for divergence in self.plan.divergences],
            "clusters": [
                {
                    "classes": list(repair.classes),
                    "words": [list(encode_word(word)) for word in repair.words],
                    "positives": sorted(
                        list(encode_word(word)) for word in repair.result.positives
                    ),
                    "fsa": fsa_to_dict(repair.result.fsa),
                }
                for repair in self.repairs
            ],
            "fsa": fsa_to_dict(self.fsa),
            "spec_id": self.record.spec_id if self.record is not None else None,
        }

    def to_dict(self, include_timing: bool = True) -> Dict:
        payload = self.canonical()
        payload["spurious"] = dict(self.plan.spurious)
        payload["summary"] = {
            "no_op": self.no_op,
            "divergences": len(self.plan.divergences),
            "repairable": len(self.plan.repairable),
            "unrepairable": len(self.plan.unrepairable),
            "repaired": sum(1 for d in self.plan.divergences if d.repaired),
            "clusters_relearned": len(self.repairs),
            "oracle_executions": self.oracle_stats.executions,
            "oracle_cache_hits": self.oracle_stats.cache_hits,
            "executor": self.executor,
            "version": self.record.version if self.record is not None else None,
        }
        if self.verification is not None:
            payload["summary"]["verification_divergences"] = len(self.verification.diverged)
            payload["summary"]["verified"] = self.verified
        if include_timing:
            payload["summary"]["elapsed_seconds"] = self.elapsed_seconds
        return payload


# ----------------------------------------------------------------- worker side
def run_relearn_task(shared, payload):
    """Re-learn one implicated cluster (picklable task-executor work unit).

    *shared* is ``(config, library_program, interface, cache_snapshot)``
    shipped once per worker process; *payload* is
    ``(index, classes, words, seed)``.  Returns the cluster result, the
    oracle-stat deltas, the cache entries discovered beyond the snapshot, and
    the elapsed wall time -- the same contract as cluster-inference workers,
    so parent-side merging is identical.
    """
    config, library_program, interface, snapshot = shared
    _index, classes, words, seed = payload
    atlas = Atlas(library_program, interface, config)
    atlas.oracle.seed_cache(snapshot)
    started = time.perf_counter()
    with _trace.span("repair.relearn", classes="+".join(classes), words=len(words)):
        result = atlas.run_cluster(classes, seed, extra_positives=words)
    elapsed = time.perf_counter() - started
    new_entries = {
        word: answer
        for word, answer in atlas.oracle.cached_results().items()
        if word not in snapshot
    }
    return result, atlas.oracle.stats, new_entries, elapsed


# ----------------------------------------------------------------- parent side
class RepairEngine:
    """Turns fuzz divergences into a repaired, republished specification."""

    def __init__(
        self,
        store: Union[SpecStore, str],
        cache_dir: Optional[str] = None,
        config: Optional[RepairConfig] = None,
        events: Optional[EventSink] = None,
        library_program=None,
        interface=None,
    ):
        self.store = store if isinstance(store, SpecStore) else SpecStore(store)
        self.cache_dir = cache_dir
        self.config = config if config is not None else RepairConfig()
        self.events = events if events is not None else NullSink()
        self.library_program = (
            library_program if library_program is not None else build_library_program()
        )
        self.interface = (
            interface if interface is not None else build_spec_interface(self.library_program)
        )

    # ------------------------------------------------------------------- bases
    def resolve_base(self, pipeline: str, spec_id: Optional[str] = None):
        """The specification being repaired: ``(description, AtlasResult)``.

        For the ``store`` pipeline this loads the pinned (or latest) stored
        result; for the named specification sets it wraps their automata in a
        synthetic result whose (stable) config keys the repaired versions in
        the store.
        """
        if pipeline == "store":
            if spec_id is None:
                record = self.store.latest(
                    fingerprint=program_fingerprint(self.library_program)
                )
                if record is None:
                    from repro.service.store import SpecNotFoundError

                    raise SpecNotFoundError(
                        f"no stored specification to repair in {self.store.root}"
                    )
                spec_id = record.spec_id
            result = self.store.get(spec_id, interface=self.interface)
            return spec_id, result
        if pipeline == "ground_truth":
            from repro.library.ground_truth import ground_truth_fsa

            fsa = ground_truth_fsa()
        elif pipeline == "handwritten":
            from repro.library.handwritten import handwritten_fsa

            fsa = handwritten_fsa()
        else:
            raise ValueError(
                f"pipeline {pipeline!r} has no repairable specification set "
                f"(repairable: {REPAIRABLE_PIPELINES})"
            )
        synthetic = AtlasResult(
            config=AtlasConfig(strategy="targeted", clusters=()),
            clusters=[],
            fsa=fsa,
            spec_program=generate_code_fragments(fsa, self.interface),
            oracle_stats=OracleStats(),
            positives=set(),
        )
        return pipeline, synthetic

    # -------------------------------------------------------------------- plan
    def plan(self, report: FuzzReport, base_fsa: FSA) -> RepairPlan:
        """Extract targeted words from every primary-pipeline divergence."""
        pipeline = report.config.pipeline
        divergences: List[DivergenceRepair] = []
        cluster_words: Dict[Tuple[str, ...], Set[Word]] = {}

        for outcome in report.outcomes:
            primary = [d for d in outcome.divergences if d.pipeline == pipeline]
            if not primary:
                continue
            trace, trace_error = None, ""
            program = outcome.shrunk_program
            if program is None:
                program = generate_scenario(outcome.name, outcome.family, outcome.seed).program
            try:
                trace = trace_library_calls(
                    program, self.interface, library_program=self.library_program
                )
            except ConcreteExecutionError as error:
                trace_error = f"counterexample crashed under tracing ({error})"

            for divergence in primary:
                entry = DivergenceRepair(
                    program=outcome.name,
                    family=outcome.family,
                    signature=divergence.signature(),
                )
                if divergence.kind != MISSED_FLOW or divergence.flow is None:
                    entry.reason = (
                        f"{divergence.kind} divergences carry no witnessed flow to repair from"
                    )
                elif trace is None:
                    entry.reason = trace_error
                else:
                    flow = divergence.flow
                    words = extract_words(
                        trace,
                        flow.source_class,
                        flow.source_method,
                        self.interface,
                        max_calls=self.config.max_calls,
                        max_words=self.config.max_words,
                    )
                    rejected = tuple(word for word in words if not base_fsa.accepts(word))
                    if rejected:
                        entry.words = rejected
                        for word in rejected:
                            cluster_words.setdefault(word_classes(word), set()).add(word)
                    elif words:
                        entry.reason = (
                            "the automaton already accepts the witnessed words: "
                            "an analysis imprecision, not a specification gap"
                        )
                    else:
                        entry.reason = "no library-boundary word connects source to sink"
                divergences.append(entry)

        clusters = [
            (classes, tuple(sorted(words, key=word_sort_key)))
            for classes, words in sorted(cluster_words.items())
        ]
        return RepairPlan(
            pipeline=pipeline,
            divergences=divergences,
            clusters=clusters,
            spurious=report.spurious_totals(),
        )

    # ------------------------------------------------------------------ repair
    def repair(
        self,
        report: Union[FuzzReport, Dict],
        spec_id: Optional[str] = None,
        verify: bool = False,
        publish: bool = True,
        state: Optional[str] = None,
    ) -> RepairOutcome:
        """Run the full repair pass over one fuzz report.

        *state* is the lifecycle state the published version is born in;
        the control plane passes ``"candidate"`` so a repair must survive
        its canary before ``latest`` (and the serving daemon) see it.
        """
        if isinstance(report, dict):
            report = FuzzReport.from_dict(report)
        with _trace.span("repair.run", pipeline=report.config.pipeline) as root:
            outcome = self._repair(report, spec_id=spec_id, publish=publish, state=state)
            root.set("clusters", len(outcome.repairs))
            root.set("published", outcome.record is not None)
            if verify and outcome.record is not None:
                with _trace.span("repair.verify", spec_id=outcome.record.spec_id):
                    outcome.verification = self.verify(outcome.record, report)
        return outcome

    def _repair(
        self,
        report: FuzzReport,
        spec_id: Optional[str] = None,
        publish: bool = True,
        state: Optional[str] = None,
    ) -> RepairOutcome:
        base_description, base = self.resolve_base(report.config.pipeline, spec_id)
        started = time.perf_counter()
        plan = self.plan(report, base.fsa)
        executor = make_task_executor(self.config.workers)
        self.events.emit(
            RepairStarted(
                pipeline=plan.pipeline,
                divergences=len(plan.divergences),
                words=len(plan.words),
                clusters=len(plan.clusters),
                executor=executor.name,
                workers=self.config.workers,
            )
        )

        stats = OracleStats()
        repairs: List[MethodRepair] = []
        record: Optional[SpecRecord] = None
        fsa = base.fsa

        if plan.clusters:
            cache = None
            if self.cache_dir is not None:
                cache = open_oracle_cache(
                    os.path.join(self.cache_dir, CACHE_FILENAME),
                    self.library_program,
                    initialization=base.config.initialization,
                )
            snapshot = dict(cache.items()) if cache is not None else {}
            relearn_config = dataclasses.replace(base.config, strategy="targeted")
            payloads = [
                (index, classes, words, self.config.seed + index)
                for index, (classes, words) in enumerate(plan.clusters)
            ]

            def on_result(index: int, outcome) -> None:
                result, worker_stats, _entries, elapsed = outcome
                self.events.emit(
                    MethodRelearned(
                        index=index,
                        classes=payloads[index][1],
                        words=len(payloads[index][2]),
                        positives=len(result.positives),
                        fsa_states=result.fsa.num_states,
                        oracle_queries=worker_stats.queries,
                        elapsed_seconds=elapsed,
                    )
                )

            outcomes = executor.map(
                run_relearn_task,
                (relearn_config, self.library_program, self.interface, snapshot),
                payloads,
                on_result=on_result,
            )
            # merge in deterministic cluster order, exactly like cluster inference
            discovered: Dict[Word, bool] = {}
            for payload, (result, worker_stats, new_entries, elapsed) in zip(payloads, outcomes):
                stats.merge(worker_stats)
                discovered.update(new_entries)
                repairs.append(
                    MethodRepair(
                        classes=payload[1],
                        words=payload[2],
                        result=result,
                        elapsed_seconds=elapsed,
                    )
                )
            if cache is not None:
                for word, answer in discovered.items():
                    cache.put(word, answer)
                written = cache.flush()
                self.events.emit(
                    CacheFlushed(path=cache.path, entries_written=written, total_entries=len(cache))
                )

        confirmed = [repair for repair in repairs if repair.result.positives]
        if confirmed:
            fsa = fsa_union([base.fsa] + [repair.result.fsa for repair in repairs])
            for divergence in plan.divergences:
                divergence.repaired = any(fsa.accepts(word) for word in divergence.words)
            if publish:
                repaired_result = AtlasResult(
                    config=base.config,
                    clusters=list(base.clusters) + [repair.result for repair in repairs],
                    fsa=fsa,
                    spec_program=generate_code_fragments(fsa, self.interface),
                    oracle_stats=stats,
                    positives=set(base.positives)
                    | {word for repair in repairs for word in repair.result.positives},
                    elapsed_seconds=time.perf_counter() - started,
                )
                with _trace.span("repair.publish", base=base_description):
                    record = self.store.put(
                        repaired_result,
                        library_program=self.library_program,
                        provenance=self._provenance(base_description, report, plan),
                        state=state,
                    )
                self.events.emit(
                    SpecRepaired(
                        spec_id=record.spec_id,
                        version=record.version,
                        base=base_description,
                        fsa_states=record.fsa_states,
                        fsa_transitions=record.fsa_transitions,
                        counterexamples=len(plan.repairable),
                    )
                )

        return RepairOutcome(
            plan=plan,
            base=base_description,
            repairs=repairs,
            fsa=fsa,
            record=record,
            oracle_stats=stats,
            executor=executor.name,
            elapsed_seconds=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------ verify
    def verify(self, record: SpecRecord, report: FuzzReport) -> FuzzReport:
        """Re-fuzz the repaired spec over the originating campaign's scenarios.

        Same families, budget, and seed as the ingested report -- so the
        exact programs that diverged are re-checked -- but against the
        published ``store`` version, without the cross-check pipeline (the
        handwritten-model Andersen is not what was repaired), and without
        shrinking or golden-corpus writes (anything still divergent is
        evidence enough).
        """
        config = FuzzConfig(
            families=report.config.families,
            budget=report.config.budget,
            seed=report.config.seed,
            workers=self.config.workers,
            pipeline="store",
            cross_check=False,
            shrink=False,
            sample=0,
        )
        verification = run_fuzz(
            config,
            events=self.events,
            store=self.store,
            spec_id=record.spec_id,
            golden_out=None,
        )
        self.events.emit(
            RepairVerified(
                spec_id=record.spec_id,
                programs=verification.programs,
                divergences=len(verification.diverged),
                clean=not verification.diverged,
            )
        )
        return verification

    # -------------------------------------------------------------- provenance
    @staticmethod
    def _provenance(base_description: str, report: FuzzReport, plan: RepairPlan) -> Dict:
        """The store-record metadata explaining where this version came from.

        When the base is itself a stored version (the ``store`` pipeline),
        ``parent`` links the new version into the lineage chain
        :meth:`repro.service.store.SpecStore.lineage` walks; repairs of the
        named specification sets are lineage roots.
        """
        return {
            "kind": "repro.repair/1",
            "base": base_description,
            "parent": base_description if plan.pipeline == "store" else None,
            "pipeline": plan.pipeline,
            "campaign": {
                "families": list(report.config.families),
                "budget": report.config.budget,
                "seed": report.config.seed,
            },
            "counterexamples": [
                {
                    "program": divergence.program,
                    "family": divergence.family,
                    "signature": divergence.signature,
                    "words": [list(encode_word(word)) for word in divergence.words],
                }
                for divergence in plan.repairable
            ],
            "unrepairable": [
                {"program": d.program, "signature": d.signature, "reason": d.reason}
                for d in plan.unrepairable
            ],
            "clusters": [list(classes) for classes, _words in plan.clusters],
        }


__all__ = [
    "REPAIRABLE_PIPELINES",
    "DivergenceRepair",
    "MethodRepair",
    "RepairConfig",
    "RepairEngine",
    "RepairOutcome",
    "RepairPlan",
    "run_relearn_task",
]
