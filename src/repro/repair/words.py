"""From boundary traces to targeted oracle words.

A missed flow means a secret object concretely entered the library through
some interface call and came back out of another, while the specification
automaton accepts no word describing that journey.  This module reconstructs
the journey from a :class:`~repro.diff.truth.BoundaryTrace`: a breadth-first
search over ``(event, variable)`` slots linked by concrete object identity
finds the shortest sequences

    z1 w1 z2 w2 ... zk wk

such that ``z1`` holds the secret on entry, each ``w_i`` / ``z_{i+1}`` pair
held the very same object (the premise edges really happened), and ``wk`` is
a return value holding the secret again.  Every result is a structurally
valid path specification -- a *candidate positive example* for the learner;
the oracle still gets the final say when the repair engine injects it.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.diff.truth import BoundaryTrace, LibraryCallEvent
from repro.lang.program import RECEIVER
from repro.specs.path_spec import is_valid_word
from repro.specs.variables import LibraryInterface, SpecVariable, param, receiver, ret

Word = Tuple[SpecVariable, ...]

#: default bounds of the search
MAX_CALLS = 6  # pairs per word (library functions spanned)
MAX_WORDS = 3  # candidate words returned per flow


def _event_slots(
    event: LibraryCallEvent, interface: LibraryInterface
) -> List[Tuple[SpecVariable, object]]:
    """The ``(spec variable, concrete object id)`` slots of one event.

    Only slots that actually held a heap object are usable links; primitive
    parameters and void returns never appear.
    """
    signature = interface.method(event.class_name, event.method_name)
    slots: List[Tuple[SpecVariable, object]] = []
    if not signature.is_static and event.receiver is not None:
        slots.append((receiver(event.class_name, event.method_name), event.receiver))
    for name, object_id in event.args:
        if object_id is not None:
            slots.append((param(event.class_name, event.method_name, name), object_id))
    if event.result is not None and signature.returns_reference():
        slots.append((ret(event.class_name, event.method_name), event.result))
    return slots


def _slot_sort_key(entry: Tuple[SpecVariable, object]) -> Tuple:
    variable, _object_id = entry
    # receiver < named params < return, then by name: a deterministic
    # expansion order makes the BFS (and thus the extracted words) stable
    rank = 2 if variable.is_return else (0 if variable.name == RECEIVER else 1)
    return (rank, variable.name)


def words_for_flow(
    trace: BoundaryTrace,
    secret_ids,
    interface: LibraryInterface,
    max_calls: int = MAX_CALLS,
    max_words: int = MAX_WORDS,
) -> List[Word]:
    """Candidate words describing how a secret crossed the library boundary.

    *secret_ids* are the trace-local ids of the flow's source-allocated
    objects.  Results are shortest-first and deterministic; at most
    *max_words* words of at most *max_calls* pairs are returned.
    """
    secrets = set(secret_ids)
    if not secrets:
        return []

    # precompute: object id -> [(event, z-slot variable)] it can enter through
    slots_by_event: Dict[int, List[Tuple[SpecVariable, object]]] = {}
    entries_by_object: Dict[object, List[Tuple[int, SpecVariable]]] = {}
    for event in trace.events:
        slots = sorted(_event_slots(event, interface), key=_slot_sort_key)
        slots_by_event[event.index] = slots
        for variable, object_id in slots:
            entries_by_object.setdefault(object_id, []).append((event.index, variable))

    found: List[Word] = []
    seen_words: Set[Word] = set()
    # (event, entry variable, pairs already in the word) -> expansions seen;
    # allowing a couple of visits per state keeps alternate prefixes alive
    # (the first word found may still fail the oracle) while bounding the
    # frontier on traces with densely shared objects
    visits: Dict[Tuple[int, SpecVariable, int], int] = {}
    budget = 20_000  # total expansions; a safety valve, generous for shrunk programs
    queue: deque = deque()

    # start states: the secret enters an event through a parameter slot
    for event in trace.events:
        for variable, object_id in slots_by_event[event.index]:
            if object_id in secrets and variable.is_param:
                queue.append(((), event.index, variable))

    while queue and len(found) < max_words and budget > 0:
        budget -= 1
        word_prefix, event_index, z_variable = queue.popleft()
        state = (event_index, z_variable, len(word_prefix) // 2)
        if visits.get(state, 0) >= 2:
            continue
        visits[state] = visits.get(state, 0) + 1
        for w_variable, w_object in slots_by_event[event_index]:
            if w_variable == z_variable:
                continue
            candidate = word_prefix + (z_variable, w_variable)
            if w_variable.is_return and w_object in secrets:
                if is_valid_word(candidate) and candidate not in seen_words:
                    seen_words.add(candidate)
                    found.append(candidate)
                    if len(found) >= max_words:
                        break
                continue
            if len(candidate) // 2 >= max_calls:
                continue
            for next_event, next_variable in entries_by_object.get(w_object, ()):
                if next_event == event_index:
                    continue
                if w_variable.is_return and next_variable.is_return:
                    continue  # w_i and z_{i+1} may not both be returns
                queue.append((candidate, next_event, next_variable))
    return found


def extract_words(
    trace: BoundaryTrace,
    source_class: str,
    source_method: str,
    interface: LibraryInterface,
    max_calls: int = MAX_CALLS,
    max_words: int = MAX_WORDS,
) -> List[Word]:
    """Candidate words for the flow whose source is ``source_class.source_method``."""
    return words_for_flow(
        trace,
        trace.allocated_by(source_class, source_method),
        interface,
        max_calls=max_calls,
        max_words=max_words,
    )


def word_classes(word: Sequence[SpecVariable]) -> Tuple[str, ...]:
    """The distinct library classes a word mentions, sorted."""
    return tuple(sorted({variable.class_name for variable in word}))


__all__ = ["MAX_CALLS", "MAX_WORDS", "extract_words", "word_classes", "words_for_flow"]
