"""Counterexample-guided specification repair (see ``docs/repair.md``).

`repro.diff` finds real specification gaps -- concrete flows a
specification-based pipeline misses, shrunk to minimal counterexamples --
but PR 4 left them frozen in a golden corpus.  This subsystem closes the
loop: it turns divergences back into *learning inputs* and republishes a
repaired specification, which the serving layer hot-reloads.

1. :func:`repro.diff.truth.trace_library_calls` replays each counterexample
   on the concrete interpreter and records its library-boundary provenance
   trace (which objects crossed which interface calls);
2. :mod:`repro.repair.words` reconstructs, from that trace, the
   path-specification words the secret object actually travelled -- the
   **targeted oracle words** the current automaton wrongly rejects;
3. :mod:`repro.repair.engine` re-runs the active-learning pipeline
   (:mod:`repro.learn`) seeded with those words, restricted to the
   implicated method clusters, warm-started from the oracle cache and the
   existing automaton, and publishes the repaired result as a new
   :class:`~repro.service.store.SpecStore` version whose provenance records
   the counterexamples that drove it;
4. an optional verification pass re-fuzzes the repaired specification over
   the originating scenario family and asserts the divergences are gone.

``repro repair --report R --store S --verify`` and the one-command closed
loop ``repro fuzz --repair`` are the CLI front ends.
"""

from repro.repair.engine import (
    DivergenceRepair,
    MethodRepair,
    RepairConfig,
    RepairEngine,
    RepairOutcome,
    RepairPlan,
)
from repro.repair.words import extract_words, words_for_flow

__all__ = [
    "DivergenceRepair",
    "MethodRepair",
    "RepairConfig",
    "RepairEngine",
    "RepairOutcome",
    "RepairPlan",
    "extract_words",
    "words_for_flow",
]
