"""The golden regression corpus: fuzz results frozen as JSON.

A campaign's interesting programs are persisted under ``tests/golden/`` --
every shrunk counterexample, plus a seeded sample of passing programs -- and
``tests/test_diff_golden.py`` replays them on every test run: it re-executes
the concrete interpreter and the recorded pipelines over the serialized
program and asserts the verdict (flow sets and divergence signatures) is
byte-for-byte what the campaign recorded.  Any behaviour change in the
interpreter, the specification languages, the code generator, or the
points-to analysis that would alter a frozen verdict fails the suite
immediately instead of waiting for the next fuzz campaign to stumble on it.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.diff.checker import DiffOutcome
from repro.lang.program import Program
from repro.lang.serialize import program_from_dict, program_to_dict
from repro.service.analyzer import Flow, _flow_sort_key, flow_from_dict, flow_to_dict

CORPUS_FORMAT = "repro.diff.golden-corpus/1"

#: entry kinds
PASSING = "pass"
COUNTEREXAMPLE = "counterexample"


@dataclass
class GoldenEntry:
    """One frozen program plus the verdict it must keep producing."""

    name: str
    family: str
    seed: int
    kind: str  # PASSING or COUNTEREXAMPLE
    program: Program
    concrete_flows: Tuple[Flow, ...]
    flows: Dict[str, Tuple[Flow, ...]]  # pipeline -> expected flows
    divergence_signatures: Tuple[str, ...] = ()
    shrink_steps: int = 0

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "family": self.family,
            "seed": self.seed,
            "kind": self.kind,
            "program": program_to_dict(self.program),
            "concrete_flows": [flow_to_dict(flow) for flow in self.concrete_flows],
            "flows": {
                pipeline: [flow_to_dict(flow) for flow in flows]
                for pipeline, flows in sorted(self.flows.items())
            },
            "divergence_signatures": list(self.divergence_signatures),
            "shrink_steps": self.shrink_steps,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "GoldenEntry":
        return cls(
            name=data["name"],
            family=data["family"],
            seed=data["seed"],
            kind=data["kind"],
            program=program_from_dict(data["program"]),
            concrete_flows=_decode_flows(data["concrete_flows"]),
            flows={
                pipeline: _decode_flows(flows) for pipeline, flows in data["flows"].items()
            },
            divergence_signatures=tuple(data.get("divergence_signatures", ())),
            shrink_steps=int(data.get("shrink_steps", 0)),
        )

    @classmethod
    def from_outcome(cls, outcome: DiffOutcome, original_program: Program) -> "GoldenEntry":
        """Freeze a checked outcome (the shrunk program, when one exists)."""
        return cls(
            name=outcome.name,
            family=outcome.family,
            seed=outcome.seed,
            kind=COUNTEREXAMPLE if outcome.diverged else PASSING,
            program=(
                outcome.shrunk_program if outcome.shrunk_program is not None else original_program
            ),
            concrete_flows=outcome.concrete,
            flows=dict(outcome.flows),
            divergence_signatures=outcome.signatures(),
            shrink_steps=outcome.shrink_steps,
        )


def _decode_flows(entries: Sequence[Dict]) -> Tuple[Flow, ...]:
    return tuple(sorted((flow_from_dict(entry) for entry in entries), key=_flow_sort_key))


def write_corpus(entries: Sequence[GoldenEntry], path: str) -> str:
    """Write a corpus file (atomically; parent directories created)."""
    payload = {
        "format": CORPUS_FORMAT,
        "entries": [entry.to_dict() for entry in entries],
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    staging = f"{path}.tmp"
    with open(staging, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    os.replace(staging, path)
    return path


def load_corpus(path: str) -> List[GoldenEntry]:
    """Load one corpus file, rejecting unknown formats loudly."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    declared = payload.get("format")
    if declared != CORPUS_FORMAT:
        raise ValueError(f"unsupported corpus format {declared!r} in {path}")
    return [GoldenEntry.from_dict(entry) for entry in payload["entries"]]


def corpus_files(directory: str) -> List[str]:
    """Every ``*.json`` corpus file under *directory*, sorted by name."""
    if not os.path.isdir(directory):
        return []
    return [
        os.path.join(directory, name)
        for name in sorted(os.listdir(directory))
        if name.endswith(".json")
    ]


__all__ = [
    "CORPUS_FORMAT",
    "COUNTEREXAMPLE",
    "PASSING",
    "GoldenEntry",
    "corpus_files",
    "load_corpus",
    "write_corpus",
]
