"""Counterexample minimization by greedy statement deletion.

A divergent fuzz program is rarely *about* most of its statements.  The
shrinker repeatedly deletes pieces -- whole methods first, then single
statements from the back of each body -- re-running the differential check
after every candidate deletion and keeping it only when the original
divergence (identified by its statement-index-free signature) still shows.
Deletions that break the program outright are self-rejecting: a dangling
variable read turns the check's verdict into a ``crash`` divergence, which
does not match the target signature, so the candidate is discarded.

The result is 1-minimal with respect to single deletions: removing any one
further statement loses the divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Tuple

from repro.lang.program import ClassDef, Program

#: predicate deciding whether a shrink candidate still exhibits the target
Predicate = Callable[[Program], bool]


@dataclass
class ShrinkResult:
    """The minimized program plus bookkeeping about the search."""

    program: Program
    steps: int  # accepted deletions
    attempts: int  # candidate programs checked
    passes: int  # full sweeps over the program

    @property
    def statements(self) -> int:
        return self.program.statement_count()


def _client_classes(program: Program) -> List[ClassDef]:
    return [cls for cls in program if not cls.is_library]


def _rebuild(program: Program, updated: ClassDef) -> Program:
    """A copy of *program* with *updated* replacing its same-named class."""
    return Program(updated if cls.name == updated.name else cls for cls in program)


def _without_method(program: Program, cls: ClassDef, method_name: str) -> Program:
    methods = {name: m for name, m in cls.methods.items() if name != method_name}
    return _rebuild(program, replace(cls, methods=methods))


def _without_statement(program: Program, cls: ClassDef, method_name: str, index: int) -> Program:
    method = cls.methods[method_name]
    body = method.body[:index] + method.body[index + 1:]
    return _rebuild(program, cls.with_method(replace(method, body=body)))


def shrink_program(program: Program, predicate: Predicate, max_passes: int = 25) -> ShrinkResult:
    """Greedily minimize *program* while *predicate* keeps holding.

    *predicate* must already hold for *program* itself; it is re-evaluated on
    every candidate deletion, so it should embed the target divergence
    signature, not just "some divergence exists" (otherwise shrinking can
    drift onto a different bug).  Deletion order is deterministic -- methods
    in name order, statements back to front -- so the same divergent program
    always shrinks to the same counterexample.
    """
    steps = 0
    attempts = 0
    passes = 0
    changed = True
    while changed and passes < max_passes:
        passes += 1
        changed = False

        # coarse pass: drop whole methods
        for cls in list(_client_classes(program)):
            for method_name in sorted(cls.methods):
                current = program.class_def(cls.name)
                if method_name not in current.methods or len(current.methods) <= 1:
                    continue
                candidate = _without_method(program, current, method_name)
                attempts += 1
                if predicate(candidate):
                    program = candidate
                    steps += 1
                    changed = True

        # fine pass: drop single statements, back to front
        for cls in list(_client_classes(program)):
            for method_name in sorted(cls.methods):
                current = program.class_def(cls.name)
                if method_name not in current.methods:
                    continue
                body_length = len(current.methods[method_name].body)
                for index in range(body_length - 1, -1, -1):
                    current = program.class_def(cls.name)
                    candidate = _without_statement(program, current, method_name, index)
                    attempts += 1
                    if predicate(candidate):
                        program = candidate
                        steps += 1
                        changed = True

    return ShrinkResult(program=program, steps=steps, attempts=attempts, passes=passes)


__all__ = ["Predicate", "ShrinkResult", "shrink_program"]
