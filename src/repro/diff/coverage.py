"""Semantic coverage maps for the coverage-guided fuzzer.

Blind random campaigns pay for every program with one full differential
check whether or not the program exercises anything new.  This module gives
the guided campaign (:mod:`repro.diff.guided`) a *semantic* notion of "new":
each checked program is fingerprinted by a set of string coverage keys drawn
from two observation points that already exist on the analysis path --

* **structural / automaton keys** -- which library methods the program's
  client code calls, in what same-receiver orders, and which transitions of
  the primary pipeline's specification automaton those call sequences
  exercise (the automaton is simulated symbolically over candidate path
  words; no interpreter changes are involved);
* **points-to keys** -- the shapes of the points-to relation the primary
  static pipeline computes for the program (how many client variables share
  each abstract object, which allocated classes each variable may reach),
  observed through the :class:`~repro.service.analyzer.ClientAnalyzer`'s
  existing Andersen step via an optional observer hook.

A :class:`CoverageMap` accumulates keys across a campaign; a program is
*coverage-novel* when it contributes at least one unseen key.  Everything is
a pure function of the program (and the fixed automaton), so coverage --
like the fuzz reports themselves -- is bit-identical between serial and
parallel campaigns.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.lang.program import MethodDef, Program
from repro.lang.statements import Assign, Call, Const, New
from repro.specs.fsa import FSA
from repro.specs.variables import LibraryInterface, param, receiver, ret

COVERAGE_FORMAT = "repro.diff.coverage-map/1"

#: pseudo-class marking variables holding primitive constants
_CONST = "$const"

#: per-receiver call sequences are capped before pairwise word expansion
_MAX_CALLS_PER_RECEIVER = 10


class CoverageMap:
    """A monotone set of observed coverage keys with per-key hit counts."""

    def __init__(self, counts: Optional[Dict[str, int]] = None):
        self._counts: Dict[str, int] = dict(counts) if counts else {}

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, key: str) -> bool:
        return key in self._counts

    def observe(self, keys: Iterable[str]) -> int:
        """Record *keys*; return how many of them were never seen before."""
        new = 0
        for key in keys:
            if key not in self._counts:
                new += 1
                self._counts[key] = 1
            else:
                self._counts[key] += 1
        return new

    def keys(self) -> Tuple[str, ...]:
        return tuple(sorted(self._counts))

    def counts(self) -> Dict[str, int]:
        return dict(sorted(self._counts.items()))

    def digest(self) -> str:
        """A stable SHA-256 fingerprint of the keys *and* their hit counts."""
        encoded = json.dumps(self.counts(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(encoded.encode("utf-8")).hexdigest()

    def to_dict(self) -> Dict:
        return {"format": COVERAGE_FORMAT, "keys": self.counts()}

    @classmethod
    def from_dict(cls, data: Dict) -> "CoverageMap":
        declared = data.get("format")
        if declared != COVERAGE_FORMAT:
            raise ValueError(f"unsupported coverage-map format {declared!r}")
        return cls({key: int(count) for key, count in data["keys"].items()})


# --------------------------------------------------------- variable tracking
def tracked_classes(
    body: Iterable, interface: LibraryInterface, upto: Optional[int] = None
) -> Dict[str, str]:
    """Best-effort class of each local after the first *upto* statements.

    Values are interface class names (``New``/returned-interface-object
    variables), :data:`_CONST` for constant-holding locals, or absent for
    locals whose class the tracker cannot follow (client allocations,
    ``Object``-returning calls, loads).  This is the shared static
    approximation both the coverage keys and the mutation operators use to
    decide which variables are interchangeable.
    """
    interface_classes = set(interface.class_names())
    classes: Dict[str, str] = {}
    for index, statement in enumerate(body):
        if upto is not None and index >= upto:
            break
        if isinstance(statement, New):
            if statement.class_name in interface_classes:
                classes[statement.target] = statement.class_name
            else:
                classes.pop(statement.target, None)
        elif isinstance(statement, Assign):
            if statement.source in classes:
                classes[statement.target] = classes[statement.source]
            else:
                classes.pop(statement.target, None)
        elif isinstance(statement, Const):
            classes[statement.target] = _CONST
        elif isinstance(statement, Call):
            if statement.target is None:
                continue
            resolved = None
            base_class = classes.get(statement.base) if statement.base else None
            if base_class and base_class != _CONST and interface.has_method(
                base_class, statement.method_name
            ):
                signature = interface.method(base_class, statement.method_name)
                if signature.return_type in interface_classes:
                    resolved = signature.return_type
            if resolved is not None:
                classes[statement.target] = resolved
            else:
                classes.pop(statement.target, None)
        else:
            target = statement.defined_variable()
            if target is not None:
                classes.pop(target, None)
    return classes


@dataclass
class _ReceiverCall:
    """One interface call attributed to a canonical receiver."""

    class_name: str
    method_name: str
    target: Optional[str]
    args: Tuple[str, ...]


def _method_call_trail(
    method: MethodDef, interface: LibraryInterface
) -> Tuple[Dict[str, List[_ReceiverCall]], List[Tuple[str, str, int, str]]]:
    """Per-canonical-receiver call sequences plus argument-link events.

    The second element lists ``(receiver class, method, arg position,
    argument's canonical receiver)`` for every interface call whose argument
    is itself a tracked interface object -- the raw material for ``addAll``
    style cross-receiver words.
    """
    interface_classes = set(interface.class_names())
    classes: Dict[str, str] = {}
    canon: Dict[str, str] = {}
    sequences: Dict[str, List[_ReceiverCall]] = {}
    links: List[Tuple[str, str, int, str]] = []

    def canonical(name: str) -> str:
        return canon.get(name, name)

    for statement in method.body:
        if isinstance(statement, New):
            if statement.class_name in interface_classes:
                classes[statement.target] = statement.class_name
                canon[statement.target] = statement.target
            else:
                classes.pop(statement.target, None)
                canon.pop(statement.target, None)
        elif isinstance(statement, Assign):
            if statement.source in classes:
                classes[statement.target] = classes[statement.source]
                canon[statement.target] = canonical(statement.source)
            else:
                classes.pop(statement.target, None)
                canon.pop(statement.target, None)
        elif isinstance(statement, Const):
            classes[statement.target] = _CONST
            canon.pop(statement.target, None)
        elif isinstance(statement, Call):
            base_class = classes.get(statement.base) if statement.base else None
            resolved = (
                base_class
                if base_class
                and base_class != _CONST
                and interface.has_method(base_class, statement.method_name)
                else None
            )
            if resolved is not None:
                rep = canonical(statement.base)
                sequence = sequences.setdefault(rep, [])
                if len(sequence) < _MAX_CALLS_PER_RECEIVER:
                    sequence.append(
                        _ReceiverCall(
                            class_name=resolved,
                            method_name=statement.method_name,
                            target=statement.target,
                            args=statement.args,
                        )
                    )
                for position, arg in enumerate(statement.args):
                    arg_class = classes.get(arg)
                    if arg_class and arg_class != _CONST:
                        links.append(
                            (resolved, statement.method_name, position, canonical(arg))
                        )
            if statement.target is not None:
                returned = None
                if resolved is not None:
                    signature = interface.method(resolved, statement.method_name)
                    if signature.return_type in interface_classes:
                        returned = signature.return_type
                if returned is not None:
                    classes[statement.target] = returned
                    canon[statement.target] = statement.target
                else:
                    classes.pop(statement.target, None)
                    canon.pop(statement.target, None)
        else:
            target = statement.defined_variable()
            if target is not None:
                classes.pop(target, None)
                canon.pop(target, None)
    return sequences, links


# ----------------------------------------------------------- structural keys
def structural_keys(program: Program, interface: LibraryInterface) -> FrozenSet[str]:
    """Call / same-receiver-order / argument-link keys of a client program."""
    keys: Set[str] = set()
    for cls in program:
        if cls.is_library:
            continue
        for method in cls.methods.values():
            sequences, links = _method_call_trail(method, interface)
            for calls in sequences.values():
                previous = None
                for call in calls:
                    keys.add(f"call:{call.class_name}.{call.method_name}")
                    if previous is not None:
                        keys.add(
                            f"seq:{call.class_name}.{previous.method_name}>{call.method_name}"
                        )
                    previous = call
            for class_name, method_name, position, arg_rep in links:
                arg_calls = sequences.get(arg_rep)
                arg_class = arg_calls[0].class_name if arg_calls else "?"
                keys.add(f"link:{class_name}.{method_name}[{position}]<{arg_class}")
    return frozenset(keys)


# ------------------------------------------------------------ automaton keys
def _simulate(fsa: FSA, word: Tuple) -> Set[str]:
    """Keys for the transitions a deterministic *fsa* takes on *word*."""
    keys: Set[str] = set()
    state = fsa.initial
    for symbol in word:
        successors = fsa.successors(state, symbol)
        if not successors:
            return keys
        target = min(successors)
        keys.add(f"auto:{state}-{symbol}->{target}")
        state = target
    if state in fsa.accepting:
        keys.add("accept:" + "|".join(str(symbol) for symbol in word))
    return keys


def _candidate_words(
    sequences: Dict[str, List[_ReceiverCall]],
    links: List[Tuple[str, str, int, str]],
    interface: LibraryInterface,
) -> List[Tuple]:
    """Candidate path-specification words a program's call shapes suggest.

    Four shapes, mirroring how specifications are written: receiver-to-return
    of one call, param-to-return across two same-receiver calls, a retrieval
    chained through a returned object (``iterator``/``next``), and the
    cross-receiver store/link/retrieve triple (``add``/``addAll``/``get``).
    """
    words: List[Tuple] = []
    for rep, calls in sequences.items():
        for i, first in enumerate(calls):
            first_sig = interface.method(first.class_name, first.method_name)
            if first_sig.returns_reference():
                words.append(
                    (
                        receiver(first.class_name, first.method_name),
                        ret(first.class_name, first.method_name),
                    )
                )
            for second in calls[i + 1 :]:
                second_sig = interface.method(second.class_name, second.method_name)
                if not second_sig.returns_reference():
                    continue
                for name, _type in first_sig.reference_params():
                    words.append(
                        (
                            param(first.class_name, first.method_name, name),
                            receiver(first.class_name, first.method_name),
                            receiver(second.class_name, second.method_name),
                            ret(second.class_name, second.method_name),
                        )
                    )
                # chain through the returned object's own calls (iterator/next)
                if second.target is not None and second.target in sequences:
                    for chained in sequences[second.target][:2]:
                        chained_sig = interface.method(
                            chained.class_name, chained.method_name
                        )
                        if not chained_sig.returns_reference():
                            continue
                        for name, _type in first_sig.reference_params():
                            words.append(
                                (
                                    param(first.class_name, first.method_name, name),
                                    receiver(first.class_name, first.method_name),
                                    receiver(second.class_name, second.method_name),
                                    ret(second.class_name, second.method_name),
                                    receiver(chained.class_name, chained.method_name),
                                    ret(chained.class_name, chained.method_name),
                                )
                            )
    for class_name, method_name, position, arg_rep in links:
        arg_calls = sequences.get(arg_rep, [])
        link_sig = interface.method(class_name, method_name)
        reference_params = link_sig.reference_params()
        if position >= len(reference_params):
            continue
        link_param = reference_params[position][0]
        receiver_calls = sequences.get(arg_rep, [])
        for stored in arg_calls:
            stored_sig = interface.method(stored.class_name, stored.method_name)
            for name, _type in stored_sig.reference_params():
                for retrieval_rep, retrieval_calls in sequences.items():
                    if retrieval_rep == arg_rep:
                        continue
                    for retrieval in retrieval_calls[:2]:
                        if retrieval.class_name != class_name:
                            continue
                        retrieval_sig = interface.method(
                            retrieval.class_name, retrieval.method_name
                        )
                        if not retrieval_sig.returns_reference():
                            continue
                        words.append(
                            (
                                param(stored.class_name, stored.method_name, name),
                                receiver(stored.class_name, stored.method_name),
                                param(class_name, method_name, link_param),
                                receiver(class_name, method_name),
                                receiver(retrieval.class_name, retrieval.method_name),
                                ret(retrieval.class_name, retrieval.method_name),
                            )
                        )
    return words


def automaton_keys(
    program: Program, interface: LibraryInterface, fsa: Optional[FSA]
) -> FrozenSet[str]:
    """Transition/acceptance keys of the spec automaton over a program's words."""
    if fsa is None:
        return frozenset()
    keys: Set[str] = set()
    for cls in program:
        if cls.is_library:
            continue
        for method in cls.methods.values():
            sequences, links = _method_call_trail(method, interface)
            for word in _candidate_words(sequences, links, interface):
                keys.update(_simulate(fsa, word))
    return frozenset(keys)


# ------------------------------------------------------------ points-to keys
def _bucket(count: int) -> str:
    return str(count) if count < 4 else "4+"


def points_to_keys(points_to) -> FrozenSet[str]:
    """Edge-shape keys of a :class:`~repro.pointsto.relations.PointsToResult`."""
    per_object: Dict[object, Set[object]] = {}
    per_variable: Dict[object, Set[str]] = {}
    for variable, obj in points_to.program_points_to_edges():
        per_object.setdefault(obj, set()).add(variable)
        per_variable.setdefault(variable, set()).add(obj.allocated_class)
    keys: Set[str] = set()
    for obj, variables in per_object.items():
        keys.add(f"pt:obj:{obj.allocated_class}*{_bucket(len(variables))}")
    for classes in per_variable.values():
        keys.add("pt:var:" + "+".join(sorted(classes)))
    return frozenset(keys)


# ----------------------------------------------------------------- context
@dataclass
class CoverageContext:
    """Everything a worker needs to fingerprint one program (picklable)."""

    pipeline: str
    interface: LibraryInterface
    fsa: Optional[FSA] = None
    _anchor: Tuple = field(default=())  # keeps dataclass happy with defaults

    def keys_for_program(self, program: Program) -> FrozenSet[str]:
        return structural_keys(program, self.interface) | automaton_keys(
            program, self.interface, self.fsa
        )

    def keys_for_points_to(self, points_to) -> FrozenSet[str]:
        return points_to_keys(points_to)


def build_coverage_context(
    pipeline: str,
    library_program: Optional[Program] = None,
    interface: Optional[LibraryInterface] = None,
    store=None,
    spec_id: Optional[str] = None,
) -> CoverageContext:
    """Resolve the primary pipeline's automaton and freeze a coverage context.

    The automaton is determinized once here (a canonical fixed point, so
    coverage keys are stable across runs); the ``implementation`` pipeline
    has no specification automaton and contributes structural and points-to
    keys only.
    """
    from repro.library.registry import build_interface, build_library_program

    library = library_program if library_program is not None else build_library_program()
    if interface is None:
        interface = build_interface(library)
    fsa: Optional[FSA] = None
    if pipeline == "ground_truth":
        from repro.library.ground_truth import ground_truth_fsa

        fsa = ground_truth_fsa().determinized()
    elif pipeline == "handwritten":
        from repro.library.handwritten import handwritten_fsa

        fsa = handwritten_fsa().determinized()
    elif pipeline == "store":
        if store is None:
            raise ValueError("coverage for pipeline 'store' needs a SpecStore")
        from repro.engine.cache import program_fingerprint
        from repro.library.registry import build_spec_interface

        if spec_id is None:
            record = store.latest(fingerprint=program_fingerprint(library))
            if record is None:
                raise ValueError(f"no stored specification in {store.root}")
            spec_id = record.spec_id
        result = store.get(spec_id, interface=build_spec_interface(library))
        fsa = result.fsa.determinized()
    return CoverageContext(pipeline=pipeline, interface=interface, fsa=fsa)


__all__ = [
    "COVERAGE_FORMAT",
    "CoverageContext",
    "CoverageMap",
    "automaton_keys",
    "build_coverage_context",
    "points_to_keys",
    "structural_keys",
    "tracked_classes",
]
