"""The differential check: concrete ground truth vs static pipelines.

One :class:`DifferentialChecker` holds a set of named, precompiled analysis
pipelines (each a :class:`~repro.service.analyzer.ClientAnalyzer` over a
different specification set) and answers, per generated program: which
ground-truth flows does each pipeline miss?  A missed flow is a
**divergence** -- a static analysis claiming soundness failed to
over-approximate real library behaviour.  Extra static flows are *not*
divergences (over-approximation is the contract); they are tallied as
``spurious`` telemetry instead.

Pipeline names mirror the experiment layer's specification modes:

* ``ground_truth`` -- code fragments generated from the ground-truth
  specification patterns (the default primary pipeline);
* ``handwritten`` -- the deliberately incomplete handwritten specification
  set of Section 6.1 (fuzzing it yields the reproducible counterexamples in
  the golden corpus);
* ``implementation`` -- handwritten-model Andersen: the analysis run
  directly over the library implementation, the independent cross-check;
* ``store`` -- a learned specification loaded from a
  :class:`~repro.service.store.SpecStore`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.client.taint import Flow
from repro.diff.families import GeneratedScenario
from repro.diff.truth import ConcreteExecutionError, ConcreteTaintAnalysis
from repro.lang.program import Program
from repro.service.analyzer import (
    SOLVER_COMPILED,
    ClientAnalyzer,
    _flow_sort_key,
    flow_from_dict,
    flow_to_dict,
)

#: divergence kinds
MISSED_FLOW = "missed-flow"
CRASH = "crash"
ENGINE_MISMATCH = "engine-mismatch"

PIPELINE_MODES = ("ground_truth", "handwritten", "implementation", "store")


def build_pipeline_analyzer(
    mode: str,
    library_program=None,
    interface=None,
    store=None,
    spec_id: Optional[str] = None,
) -> ClientAnalyzer:
    """Compile the :class:`ClientAnalyzer` for one pipeline mode."""
    from repro.library.ground_truth import ground_truth_program
    from repro.library.handwritten import handwritten_program
    from repro.library.registry import build_interface, build_library_program, replaceable_library

    library = library_program if library_program is not None else build_library_program()
    if mode == "store":
        if store is None:
            raise ValueError("pipeline mode 'store' needs a SpecStore")
        # interface=None lets from_store pick the spec-compile interface, the
        # only one under which repaired (array-crossing) automata compile
        return ClientAnalyzer.from_store(
            store, spec_id=spec_id, library_program=library, interface=None
        )
    if interface is None:
        interface = build_interface(library)
    if mode == "ground_truth":
        spec_program = ground_truth_program(interface)
    elif mode == "handwritten":
        spec_program = handwritten_program(interface)
    elif mode == "implementation":
        spec_program = replaceable_library(library)
    else:
        raise ValueError(f"unknown pipeline mode {mode!r} (known: {PIPELINE_MODES})")
    return ClientAnalyzer(spec_program, library_program=library, spec_id=mode)


@dataclass(frozen=True)
class Divergence:
    """One way a static pipeline failed to cover the ground truth."""

    kind: str  # MISSED_FLOW or CRASH
    pipeline: str
    flow: Optional[Flow] = None
    detail: str = ""

    def signature(self) -> str:
        """A stable identity that survives shrinking (no statement indexes)."""
        if self.flow is not None:
            return (
                f"{self.kind}:{self.pipeline}:"
                f"{self.flow.source_class}.{self.flow.source_method}->"
                f"{self.flow.sink_class}.{self.flow.sink_method}"
            )
        return f"{self.kind}:{self.pipeline}:{self.detail}"

    def to_dict(self) -> Dict:
        payload = {"kind": self.kind, "pipeline": self.pipeline, "detail": self.detail}
        payload["flow"] = flow_to_dict(self.flow) if self.flow is not None else None
        return payload

    @classmethod
    def from_dict(cls, data: Dict) -> "Divergence":
        flow = data.get("flow")
        return cls(
            kind=data["kind"],
            pipeline=data["pipeline"],
            flow=flow_from_dict(flow) if flow else None,
            detail=data.get("detail", ""),
        )


@dataclass
class DiffOutcome:
    """The differential verdict for one checked program."""

    name: str
    family: str
    seed: int
    statements: int
    concrete: Tuple[Flow, ...]  # canonically sorted ground truth
    flows: Dict[str, Tuple[Flow, ...]]  # pipeline -> canonically sorted flows
    divergences: Tuple[Divergence, ...]
    spurious: Dict[str, int] = field(default_factory=dict)
    shrunk_program: Optional[Program] = None
    shrink_steps: int = 0

    @property
    def diverged(self) -> bool:
        return bool(self.divergences)

    def signatures(self) -> Tuple[str, ...]:
        return tuple(sorted({divergence.signature() for divergence in self.divergences}))

    def canonical(self) -> Dict:
        """The timing-free encoding two equivalent campaign runs share."""
        from repro.lang.serialize import program_to_dict

        payload = {
            "name": self.name,
            "family": self.family,
            "seed": self.seed,
            "statements": self.statements,
            "concrete_flows": [flow_to_dict(flow) for flow in self.concrete],
            "flows": {
                pipeline: [flow_to_dict(flow) for flow in flows]
                for pipeline, flows in sorted(self.flows.items())
            },
            "divergences": [divergence.to_dict() for divergence in self.divergences],
            "spurious": dict(sorted(self.spurious.items())),
            "shrink_steps": self.shrink_steps,
        }
        payload["shrunk_program"] = (
            program_to_dict(self.shrunk_program) if self.shrunk_program is not None else None
        )
        return payload

    @classmethod
    def from_dict(cls, data: Dict) -> "DiffOutcome":
        """Rebuild an outcome from its :meth:`canonical` encoding.

        This is what lets the repair engine ingest a fuzz report *file*
        (``repro fuzz --out``) hours or machines away from the campaign that
        produced it.
        """
        from repro.lang.serialize import program_from_dict

        shrunk = data.get("shrunk_program")
        return cls(
            name=data["name"],
            family=data["family"],
            seed=int(data["seed"]),
            statements=int(data["statements"]),
            concrete=tuple(
                sorted((flow_from_dict(entry) for entry in data["concrete_flows"]), key=_flow_sort_key)
            ),
            flows={
                pipeline: tuple(
                    sorted((flow_from_dict(entry) for entry in flows), key=_flow_sort_key)
                )
                for pipeline, flows in data["flows"].items()
            },
            divergences=tuple(
                Divergence.from_dict(entry) for entry in data["divergences"]
            ),
            spurious=dict(data.get("spurious", {})),
            shrunk_program=program_from_dict(shrunk) if shrunk is not None else None,
            shrink_steps=int(data.get("shrink_steps", 0)),
        )


def _sorted_flows(flows) -> Tuple[Flow, ...]:
    return tuple(sorted(flows, key=_flow_sort_key))


class DifferentialChecker:
    """Checks programs against a fixed set of precompiled pipelines."""

    def __init__(
        self,
        analyzers: Dict[str, ClientAnalyzer],
        library_program=None,
        max_steps: int = 200_000,
        engine_check: bool = False,
    ):
        if not analyzers:
            raise ValueError("at least one analysis pipeline is required")
        self.analyzers = dict(analyzers)
        self.truth = ConcreteTaintAnalysis(library_program=library_program, max_steps=max_steps)
        self.engine_check = bool(engine_check)
        # compiled twins share each pipeline's compiled spec but run the
        # bitset engine, so every checked program also differentially tests
        # repro.solve against the reference solver (kind: engine-mismatch)
        self._compiled_twins: Dict[str, ClientAnalyzer] = {}
        if self.engine_check:
            for pipeline, analyzer in self.analyzers.items():
                if analyzer.solver != SOLVER_COMPILED:
                    self._compiled_twins[pipeline] = analyzer.with_solver(SOLVER_COMPILED)

    # ------------------------------------------------------------------ checks
    def check_program(
        self,
        program: Program,
        name: str,
        family: str = "",
        seed: int = 0,
        observers: Optional[Dict] = None,
    ) -> DiffOutcome:
        """Differentially check one program; never raises on divergence.

        *observers* optionally maps pipeline names to points-to observer
        callables (see :meth:`ClientAnalyzer.analyze_program`); the guided
        fuzzer uses it to collect coverage from its primary pipeline.
        """
        divergences: List[Divergence] = []
        try:
            concrete = _sorted_flows(self.truth.run(program))
        except ConcreteExecutionError as error:
            concrete = ()
            divergences.append(
                Divergence(kind=CRASH, pipeline="concrete", detail=f"{type(error.cause).__name__}")
            )

        flows: Dict[str, Tuple[Flow, ...]] = {}
        spurious: Dict[str, int] = {}
        for pipeline, analyzer in sorted(self.analyzers.items()):
            observer = observers.get(pipeline) if observers else None
            report = analyzer.analyze_program(program, name, points_to_observer=observer)
            flows[pipeline] = report.flows
            reported = set(report.flows)
            for flow in concrete:
                if flow not in reported:
                    divergences.append(Divergence(kind=MISSED_FLOW, pipeline=pipeline, flow=flow))
            spurious[pipeline] = len(reported.difference(concrete))
            twin = self._compiled_twins.get(pipeline)
            if twin is not None:
                compiled = set(twin.analyze_program(program, name).flows)
                for flow in sorted(reported - compiled, key=_flow_sort_key):
                    divergences.append(
                        Divergence(
                            kind=ENGINE_MISMATCH,
                            pipeline=pipeline,
                            flow=flow,
                            detail="missing from compiled solver",
                        )
                    )
                for flow in sorted(compiled - reported, key=_flow_sort_key):
                    divergences.append(
                        Divergence(
                            kind=ENGINE_MISMATCH,
                            pipeline=pipeline,
                            flow=flow,
                            detail="extra in compiled solver",
                        )
                    )

        return DiffOutcome(
            name=name,
            family=family,
            seed=seed,
            statements=program.statement_count(),
            concrete=concrete,
            flows=flows,
            divergences=tuple(divergences),
            spurious=spurious,
        )

    def check(self, scenario: GeneratedScenario) -> DiffOutcome:
        return self.check_program(
            scenario.program, scenario.name, family=scenario.family, seed=scenario.seed
        )


__all__ = [
    "CRASH",
    "ENGINE_MISMATCH",
    "MISSED_FLOW",
    "PIPELINE_MODES",
    "DiffOutcome",
    "DifferentialChecker",
    "Divergence",
    "build_pipeline_analyzer",
]
