"""Seeded scenario families for the differential fuzzer.

Each family is a generator of small client programs exercising one shape of
library interaction the static analysis must over-approximate:

* ``alias-chains`` -- deep aliasing and whole-container copy chains: local
  alias runs, same-class ``addAll`` chains, ``Box.clone`` chains, fluent
  ``StringBuilder.append`` chains.
* ``nested-containers`` -- heterogeneous nesting (map-of-list-of-box and
  friends): a secret is buried under three container layers and dug back out
  through ``get``/``values``/``elements``/iterator paths.
* ``field-interleavings`` -- client-side load/store interleavings over
  app-local holder classes: aliased holders, overwritten fields, holder
  links; the part of the program the analysis sees *without* specifications,
  stressing its field sensitivity.
* ``fluent-pipelines`` -- iterator / ``subList`` / fluent-append pipelines:
  values threaded through chains of library calls where each stage's result
  (an iterator, a view, a returned receiver) is the next stage's receiver.
* ``callback-flows`` -- client-defined callback objects: values delivered
  into app-level callback methods (directly or via a container) and read
  back out, the higher-order flow shape the analysis must track without any
  library specification.
* ``taint-app`` -- the classic :mod:`repro.benchgen` profile, included so
  campaigns can cover the paper's original workload too (its legacy
  ``toArray`` idiom intentionally escapes the specification language, so it
  is not part of :data:`DEFAULT_FAMILIES`).

Everything is driven by a seeded :class:`random.Random`: the same
``(family, seed)`` pair always produces the byte-identical program (pinned by
``tests/test_benchgen_determinism.py``), which is what makes fuzz campaigns
and the golden corpus reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Sequence, Tuple

from repro.benchgen.generator import AppGenerator, AppProfile
from repro.client.sources_sinks import SINK_METHODS, SOURCE_METHODS
from repro.lang.builder import ClassBuilder, MethodBuilder
from repro.lang.program import Program
from repro.lang.types import OBJECT


@dataclass(frozen=True)
class GeneratedScenario:
    """One generated program plus the metadata the fuzzer tracks."""

    name: str
    family: str
    seed: int
    program: Program
    statements: int
    planted_flows: int


class ScenarioFamily:
    """A named, seeded generator of client programs."""

    name = "abstract"

    def generate(self, name: str, seed: int) -> GeneratedScenario:
        raise NotImplementedError


# --------------------------------------------------------------------- helpers
class _Emitter:
    """Shared statement-emission helpers for the hand-rolled families."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        self._counter = 0
        self.planted = 0

    def fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def source(self, method: MethodBuilder, secret: bool) -> str:
        value = self.fresh("v")
        if secret:
            source_class, source_method = self.rng.choice(sorted(SOURCE_METHODS))
            manager = self.fresh("mgr")
            method.new(manager, source_class)
            method.call(value, manager, source_method)
        else:
            provider = self.fresh("res")
            method.new(provider, "ResourceManager")
            method.call(value, provider, self.rng.choice(["getString", "getDrawable"]))
        return value

    def sink(self, method: MethodBuilder, value: str, secret: bool) -> None:
        if secret:
            self.planted += 1
        sink_class, sink_method = self.rng.choice(sorted(SINK_METHODS))
        device = self.fresh("out")
        method.new(device, sink_class)
        method.call(None, device, sink_method, value)

    def alias_run(self, method: MethodBuilder, value: str, depth: int) -> str:
        for _ in range(depth):
            alias = self.fresh("a")
            method.assign(alias, value)
            value = alias
        return value


def _single_class_scenario(
    family: str, name: str, seed: int, emit_handler, extra_classes=()
) -> GeneratedScenario:
    """Assemble a scenario whose program is one client class of handlers."""
    emitter = _Emitter(seed)
    app = ClassBuilder(name)
    handlers = emitter.rng.randint(2, 3)
    for index in range(1, handlers + 1):
        method = MethodBuilder(f"handler{index}", is_static=True)
        for _ in range(emitter.rng.randint(1, 2)):
            emit_handler(emitter, method)
        app.add_method(method)
    classes = [app.build()]
    classes.extend(extra_classes)
    program = Program(classes)
    return GeneratedScenario(
        name=name,
        family=family,
        seed=seed,
        program=program,
        statements=program.statement_count(),
        planted_flows=emitter.planted,
    )


# ----------------------------------------------------------------- alias-chains
#: same-class copy chains the specifications model with a starred ``addAll``
_COPYABLE = ("ArrayList", "LinkedList", "Vector", "Stack")

#: retrieval spellings per copyable class; ``None`` index means no index arg
_RETRIEVALS: Dict[str, Tuple[Tuple[str, bool], ...]] = {
    "ArrayList": (("get", True), ("remove", True), ("iterator", False)),
    "LinkedList": (("getFirst", False), ("peek", False), ("poll", False), ("element", False)),
    "Vector": (("get", True), ("elementAt", True), ("firstElement", False), ("lastElement", False)),
    "Stack": (("peek", False), ("pop", False), ("firstElement", False)),
}


class AliasChainFamily(ScenarioFamily):
    """Deep aliasing and whole-container / ``Box.clone`` copy chains."""

    name = "alias-chains"

    def _chain(self, emitter: _Emitter, method: MethodBuilder) -> None:
        rng = emitter.rng
        secret = rng.random() < 0.6
        value = emitter.source(method, secret)
        value = emitter.alias_run(method, value, rng.randint(0, 4))

        kind = rng.choice(["copies", "copies", "clones", "builder"])
        if kind == "copies":
            container_class = rng.choice(_COPYABLE)
            first = emitter.fresh("c")
            method.new(first, container_class)
            store = "push" if container_class == "Stack" and rng.random() < 0.5 else "add"
            method.call(None, first, store, value)
            current = first
            for _ in range(rng.randint(1, 5)):
                copy = emitter.fresh("c")
                method.new(copy, container_class)
                method.call(None, copy, "addAll", current)
                current = copy
            retrieve, needs_index = rng.choice(_RETRIEVALS[container_class])
            value = emitter.fresh("r")
            if retrieve == "iterator":
                iterator = emitter.fresh("it")
                method.call(iterator, current, "iterator")
                method.call(value, iterator, "next")
            elif needs_index:
                index = emitter.fresh("i")
                method.const(index, 0)
                method.call(value, current, retrieve, index)
            else:
                method.call(value, current, retrieve)
        elif kind == "clones":
            box = emitter.fresh("b")
            method.new(box, "Box")
            method.call(None, box, "set", value)
            for _ in range(rng.randint(1, 6)):
                clone = emitter.fresh("b")
                method.call(clone, box, "clone")
                box = clone
            value = emitter.fresh("r")
            method.call(value, box, "get")
        else:  # fluent builder chain: append returns its receiver
            builder_class = rng.choice(["StringBuilder", "StringBuffer"])
            builder = emitter.fresh("sb")
            method.new(builder, builder_class)
            method.call(None, builder, "append", value)
            for _ in range(rng.randint(0, 3)):
                fluent = emitter.fresh("sb")
                method.call(fluent, builder, "append", value)
                builder = fluent
            value = emitter.fresh("r")
            method.call(value, builder, "toString")

        value = emitter.alias_run(method, value, rng.randint(0, 2))
        if rng.random() < 0.85:
            emitter.sink(method, value, secret)

    def generate(self, name: str, seed: int) -> GeneratedScenario:
        return _single_class_scenario(self.name, name, seed, self._chain)


# ------------------------------------------------------------ nested-containers
class NestedContainerFamily(ScenarioFamily):
    """Map-of-list-of-box style heterogeneous nesting."""

    name = "nested-containers"

    def _store_inner(self, emitter: _Emitter, method: MethodBuilder, value: str, inner_class: str) -> str:
        inner = emitter.fresh("in")
        method.new(inner, inner_class)
        if inner_class == "Box":
            method.call(None, inner, "set", value)
        else:  # StringBuilder
            method.call(None, inner, "append", value)
        return inner

    def _load_inner(self, emitter: _Emitter, method: MethodBuilder, inner: str, inner_class: str) -> str:
        value = emitter.fresh("r")
        method.call(value, inner, "get" if inner_class == "Box" else "toString")
        return value

    def _chain(self, emitter: _Emitter, method: MethodBuilder) -> None:
        rng = emitter.rng
        secret = rng.random() < 0.7
        inner_class = rng.choice(["Box", "Box", "StringBuilder"])
        middle_class = rng.choice(["ArrayList", "LinkedList", "HashSet"])
        outer_class = rng.choice(["HashMap", "Hashtable", "TreeMap"])

        value = emitter.source(method, secret)
        inner = self._store_inner(emitter, method, value, inner_class)

        middle = emitter.fresh("mid")
        method.new(middle, middle_class)
        method.call(None, middle, "add", inner)

        outer = emitter.fresh("map")
        method.new(outer, outer_class)
        key = emitter.fresh("k")
        method.new(key, "Object")
        method.call(None, outer, "put", key, middle)
        # decoy entries after the secret one: the concrete map hands back the
        # first entry, so the planted chain stays concretely observable
        for _ in range(rng.randint(0, 2)):
            decoy = emitter.fresh("d")
            method.new(decoy, "Object")
            decoy_key = emitter.fresh("k")
            method.new(decoy_key, "Object")
            method.call(None, outer, "put", decoy_key, decoy)

        # dig the middle container back out of the map
        middle_back = emitter.fresh("mb")
        path = rng.choice(["get", "get", "values", "elements" if outer_class == "Hashtable" else "get"])
        if path == "get":
            probe = emitter.fresh("k")
            method.new(probe, "Object")
            method.call(middle_back, outer, "get", probe)
        elif path == "values":
            values = emitter.fresh("vals")
            method.call(values, outer, "values")
            iterator = emitter.fresh("it")
            method.call(iterator, values, "iterator")
            method.call(middle_back, iterator, "next")
        else:  # Hashtable legacy enumeration
            enumeration = emitter.fresh("en")
            method.call(enumeration, outer, "elements")
            method.call(middle_back, enumeration, "next")

        # dig the inner container back out of the middle one
        inner_back = emitter.fresh("ib")
        if middle_class == "ArrayList" and rng.random() < 0.5:
            index = emitter.fresh("i")
            method.const(index, 0)
            method.call(inner_back, middle_back, "get", index)
        elif middle_class == "LinkedList" and rng.random() < 0.5:
            method.call(inner_back, middle_back, "getFirst")
        else:
            iterator = emitter.fresh("it")
            method.call(iterator, middle_back, "iterator")
            method.call(inner_back, iterator, "next")

        out = self._load_inner(emitter, method, inner_back, inner_class)
        if rng.random() < 0.9:
            emitter.sink(method, out, secret)

    def generate(self, name: str, seed: int) -> GeneratedScenario:
        return _single_class_scenario(self.name, name, seed, self._chain)


# ---------------------------------------------------------- field-interleavings
class FieldInterleavingFamily(ScenarioFamily):
    """Client-side load/store interleavings over app-local holder classes."""

    name = "field-interleavings"

    _FIELDS = ("fa", "fb", "fc", "link")

    def _chain(self, holder_class: str, emitter: _Emitter, method: MethodBuilder) -> None:
        rng = emitter.rng
        holders = [emitter.fresh("h") for _ in range(rng.randint(2, 4))]
        for holder in holders:
            method.new(holder, holder_class)

        secret = emitter.source(method, True)
        benign = emitter.source(method, False)

        # shadow heap: (holder var, field) -> is the stored value the secret?
        shadow: Dict[Tuple[str, str], bool] = {}
        aliases: Dict[str, str] = {holder: holder for holder in holders}

        def canonical(var: str) -> str:
            return aliases.get(var, var)

        for _ in range(rng.randint(4, 10)):
            action = rng.random()
            holder = rng.choice(holders)
            if action < 0.45:
                field = rng.choice(self._FIELDS[:3])
                use_secret = rng.random() < 0.5
                method.store(holder, field, secret if use_secret else benign)
                shadow[(canonical(holder), field)] = use_secret
            elif action < 0.65:
                alias = emitter.fresh("g")
                method.assign(alias, holder)
                aliases[alias] = canonical(holder)
                holders.append(alias)
            elif action < 0.85:
                other = rng.choice(holders)
                method.store(holder, "link", other)
                shadow[(canonical(holder), "link")] = False
                linked = emitter.fresh("g")
                method.load(linked, holder, "link")
                aliases[linked] = canonical(other)
                holders.append(linked)
            else:
                field = rng.choice(self._FIELDS[:3])
                probe = emitter.fresh("p")
                method.load(probe, holder, field)

        # read a handful of fields back and sink what comes out
        for _ in range(rng.randint(1, 3)):
            holder = rng.choice(holders)
            field = rng.choice(self._FIELDS[:3])
            out = emitter.fresh("o")
            method.load(out, holder, field)
            emitter.sink(method, out, shadow.get((canonical(holder), field), False))

    def generate(self, name: str, seed: int) -> GeneratedScenario:
        holder_name = f"{name}Holder"
        holder = ClassBuilder(holder_name)
        for field in self._FIELDS:
            holder.field(field)
        holder.add_method(holder.constructor())
        return _single_class_scenario(
            self.name,
            name,
            seed,
            partial(self._chain, holder_name),
            extra_classes=[holder.build()],
        )


# ---------------------------------------------------------------- fluent-pipelines
class FluentPipelineFamily(ScenarioFamily):
    """Iterator / ``subList`` / fluent-append pipelines over containers."""

    name = "fluent-pipelines"

    def _chain(self, emitter: _Emitter, method: MethodBuilder) -> None:
        rng = emitter.rng
        secret = rng.random() < 0.7
        value = emitter.source(method, secret)

        kind = rng.choice(["iterate", "iterate", "sublist", "fluent"])
        if kind == "iterate":
            container_class = rng.choice(
                ["ArrayList", "LinkedList", "Vector", "HashSet", "TreeSet"]
            )
            container = emitter.fresh("c")
            method.new(container, container_class)
            method.call(None, container, "add", value)
            # optionally pipe through a same-class whole-container copy stage
            # (cross-class addAll, like toArray, escapes the specification
            # language -- exactly what guided campaigns exist to rediscover,
            # so the *family* itself stays clean)
            if container_class in _COPYABLE and rng.random() < 0.5:
                stage = emitter.fresh("c")
                method.new(stage, container_class)
                method.call(None, stage, "addAll", container)
                container = stage
            iterator = emitter.fresh("it")
            method.call(iterator, container, "iterator")
            if rng.random() < 0.5:
                more = emitter.fresh("m")
                method.call(more, iterator, "hasNext")
            value = emitter.fresh("r")
            method.call(value, iterator, "next")
        elif kind == "sublist":
            container = emitter.fresh("c")
            method.new(container, "ArrayList")
            method.call(None, container, "add", value)
            start = emitter.fresh("i")
            method.const(start, 0)
            end = emitter.fresh("i")
            method.const(end, 1)
            view = container
            for _ in range(rng.randint(1, 3)):
                sliced = emitter.fresh("v")
                method.call(sliced, view, "subList", start, end)
                view = sliced
            # only ``get`` retrieval: remove/iterator after a subList view
            # escape the specification language (rediscoverable gaps, like
            # toArray), and this family must stay clean against ground truth
            value = emitter.fresh("r")
            index = emitter.fresh("i")
            method.const(index, 0)
            method.call(value, view, "get", index)
        else:  # fluent append chain threaded through returned receivers
            builder_class = rng.choice(["StringBuilder", "StringBuffer"])
            current = emitter.fresh("sb")
            method.new(current, builder_class)
            for _ in range(rng.randint(1, 4)):
                chained = emitter.fresh("sb")
                method.call(chained, current, "append", value)
                current = chained
            value = emitter.fresh("r")
            method.call(value, current, "toString")

        if rng.random() < 0.9:
            emitter.sink(method, value, secret)

    def generate(self, name: str, seed: int) -> GeneratedScenario:
        return _single_class_scenario(self.name, name, seed, self._chain)


# ------------------------------------------------------------------ callback-flows
class CallbackFlowFamily(ScenarioFamily):
    """Client-defined callbacks: higher-order flows through app-level code."""

    name = "callback-flows"

    def _chain(self, callback_class: str, emitter: _Emitter, method: MethodBuilder) -> None:
        rng = emitter.rng
        secret = rng.random() < 0.7
        value = emitter.source(method, secret)
        handle = emitter.fresh("cb")
        method.new(handle, callback_class)
        if rng.random() < 0.4:
            handle = emitter.alias_run(method, handle, rng.randint(1, 2))
        method.call(None, handle, rng.choice(["accept", "accept", "relay"]), value)

        if rng.random() < 0.4:
            # pass the callback through a container before reading it back
            container_class = rng.choice(["ArrayList", "LinkedList", "Vector"])
            container = emitter.fresh("c")
            method.new(container, container_class)
            method.call(None, container, "add", handle)
            back = emitter.fresh("cb")
            if container_class == "LinkedList":
                method.call(back, container, "getFirst")
            else:
                index = emitter.fresh("i")
                method.const(index, 0)
                method.call(back, container, "get", index)
            handle = back
        out = emitter.fresh("o")
        method.call(out, handle, "fetch")
        if rng.random() < 0.9:
            emitter.sink(method, out, secret)

    def generate(self, name: str, seed: int) -> GeneratedScenario:
        callback_name = f"{name}Cb"
        cb = ClassBuilder(callback_name)
        cb.field("held")
        cb.add_method(cb.constructor())
        cb.add_method(
            cb.method("accept", ["x"], doc="store the delivered value").store(
                "this", "held", "x"
            )
        )
        cb.add_method(
            cb.method("relay", ["x"], doc="indirect delivery through accept").call(
                None, "this", "accept", "x"
            )
        )
        cb.add_method(
            cb.method("fetch", return_type=OBJECT, doc="read the last delivered value")
            .load("r", "this", "held")
            .ret("r")
        )
        return _single_class_scenario(
            self.name,
            name,
            seed,
            partial(self._chain, callback_name),
            extra_classes=[cb.build()],
        )


# --------------------------------------------------------------------- taint-app
class TaintAppFamily(ScenarioFamily):
    """The classic benchgen profile, wrapped as a scenario family."""

    name = "taint-app"

    def generate(self, name: str, seed: int) -> GeneratedScenario:
        rng = random.Random(seed)
        profile = AppProfile(
            name=name,
            seed=seed,
            target_statements=rng.randint(40, 120),
            category="utility",
        )
        app = AppGenerator(profile).generate()
        return GeneratedScenario(
            name=name,
            family=self.name,
            seed=seed,
            program=app.program,
            statements=app.statements,
            planted_flows=app.planted_leaks,
        )


# -------------------------------------------------------------------- registry
FAMILIES: Dict[str, ScenarioFamily] = {
    family.name: family
    for family in (
        AliasChainFamily(),
        NestedContainerFamily(),
        FieldInterleavingFamily(),
        FluentPipelineFamily(),
        CallbackFlowFamily(),
        TaintAppFamily(),
    )
}

#: the families a campaign covers when none are named: the three new shapes
#: whose flows the specification language fully covers (``taint-app`` is
#: opt-in -- its legacy ``toArray`` idiom is a *known* specification gap)
DEFAULT_FAMILIES: Tuple[str, ...] = (
    "alias-chains",
    "nested-containers",
    "field-interleavings",
)

#: multiplier deriving per-scenario seeds from (campaign seed, index)
_SEED_STRIDE = 1_000_003


def scenario_plan(
    families: Sequence[str], budget: int, seed: int
) -> List[Tuple[str, str, int]]:
    """The deterministic campaign plan: ``budget`` (name, family, seed) triples.

    Scenarios round-robin over *families* so every family gets an equal share
    of any budget; per-scenario seeds depend only on the campaign seed and
    the scenario index, never on worker scheduling.
    """
    for family in families:
        if family not in FAMILIES:
            raise KeyError(f"unknown scenario family {family!r} (known: {sorted(FAMILIES)})")
    if not families:
        raise ValueError("at least one scenario family is required")
    plan = []
    for index in range(budget):
        family = families[index % len(families)]
        scenario_name = f"{_camel(family)}{index:04d}"
        plan.append((scenario_name, family, seed * _SEED_STRIDE + index))
    return plan


def generate_scenario(name: str, family: str, seed: int) -> GeneratedScenario:
    """Generate one scenario program (deterministic in ``(family, seed)``)."""
    return FAMILIES[family].generate(name, seed)


def _camel(family: str) -> str:
    return "".join(part.capitalize() for part in family.split("-"))


__all__ = [
    "DEFAULT_FAMILIES",
    "FAMILIES",
    "GeneratedScenario",
    "ScenarioFamily",
    "generate_scenario",
    "scenario_plan",
]
