"""Concrete ground-truth flows, via provenance-tracking interpretation.

The differential fuzzer's oracle: run a client program for real on the
:mod:`repro.interp` interpreter (against the actual library implementation,
not any specification) and record exactly which secret objects reach sink
call sites.  A *concrete flow* uses the same coordinates as the static
client's :class:`~repro.client.taint.Flow` -- source method, sink method,
sink call site -- so the two flow sets compare directly: every concrete flow
the static analysis fails to report is a soundness divergence.

Tracking rides on the interpreter's observer hooks: :meth:`on_allocate`
records which method allocated every heap object (its *provenance*), and
:meth:`before_statement` inspects sink calls just before they execute,
checking whether the argument object was allocated inside a source method.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.client.sources_sinks import SINK_METHODS, SOURCE_METHODS
from repro.client.taint import Flow
from repro.interp.errors import InterpreterError
from repro.interp.heap import HeapObject
from repro.interp.interpreter import Interpreter
from repro.lang.program import CONSTRUCTOR, MethodRef, Program
from repro.lang.statements import Call, Statement
from repro.library.registry import build_library_program, core_program


class ConcreteExecutionError(RuntimeError):
    """A scenario program crashed under concrete execution.

    Generated programs are straight-line and self-contained, so a crash is a
    generator bug (or a shrink candidate that deleted a definition) -- the
    checker reports it as its own divergence kind instead of a flow mismatch.
    """

    def __init__(self, entry: MethodRef, cause: InterpreterError):
        super().__init__(f"{entry}: {type(cause).__name__}: {cause}")
        self.entry = entry
        self.cause = cause


class ConcreteTaintInterpreter(Interpreter):
    """An interpreter that watches secrets travel from sources to sinks."""

    observing = True  # opt into the instrumented execution loop

    def __init__(self, program: Program, sink_positions: Dict[str, List[Tuple[str, str, int]]], **kwargs):
        super().__init__(program, **kwargs)
        self._sink_positions = sink_positions
        #: object id -> (class, method) that allocated it
        self.provenance: Dict[int, Tuple[str, str]] = {}
        self.flows: Set[Flow] = set()

    # ------------------------------------------------------------------ hooks
    def on_allocate(self, obj: HeapObject) -> None:
        current = self.current_method
        if current is not None:
            self.provenance[obj.object_id] = (current.class_name, current.method_name)

    def before_statement(self, ref: MethodRef, index: int, statement: Statement, env) -> None:
        if not isinstance(statement, Call) or statement.base is None or not statement.args:
            return
        candidates = self._sink_positions.get(statement.method_name)
        if not candidates:
            return
        receiver = env.get(statement.base)
        if not isinstance(receiver, HeapObject):
            return
        for sink_class, sink_method, position in candidates:
            if receiver.class_name != sink_class or position >= len(statement.args):
                continue
            argument = env.get(statement.args[position])
            if not isinstance(argument, HeapObject):
                continue
            source = self.provenance.get(argument.object_id)
            if source is None or source not in SOURCE_METHODS:
                continue
            self.flows.add(
                Flow(
                    source_class=source[0],
                    source_method=source[1],
                    sink_class=sink_class,
                    sink_method=sink_method,
                    sink_caller_class=ref.class_name,
                    sink_caller_method=ref.method_name,
                    sink_statement_index=index,
                )
            )


class ConcreteTaintAnalysis:
    """Executes every entry point of a client program and collects flows.

    Entry points are the static, parameterless methods of the program's
    non-library classes (the ``handlerN`` methods every scenario family
    emits), each executed on a fresh heap -- mirroring how the static client
    treats methods as independent roots.
    """

    def __init__(self, library_program: Optional[Program] = None, max_steps: int = 200_000):
        library = library_program if library_program is not None else build_library_program()
        self._core_names = core_program(library).class_names()
        self._library = library
        self._max_steps = max_steps

    # ------------------------------------------------------------------ setup
    def _full_program(self, program: Program) -> Program:
        from repro.client.sources_sinks import build_framework_program

        return (
            program.merged_with(self._library)
            .merged_with(build_framework_program())
        )

    @staticmethod
    def _sink_positions(program: Program) -> Dict[str, List[Tuple[str, str, int]]]:
        """sink method name -> [(sink class, sink method, argument position)]."""
        positions: Dict[str, List[Tuple[str, str, int]]] = {}
        for (sink_class, sink_method), parameter in sorted(SINK_METHODS.items()):
            position = 0
            if program.has_class(sink_class):
                ref = program.resolve_method(sink_class, sink_method)
                if ref is not None:
                    names = program.method_def(ref).parameter_names()
                    if parameter in names:
                        position = names.index(parameter)
            positions.setdefault(sink_method, []).append((sink_class, sink_method, position))
        return positions

    @staticmethod
    def entry_points(program: Program) -> List[MethodRef]:
        """The static, parameterless non-library methods, in program order."""
        entries = []
        for cls in program:
            if cls.is_library:
                continue
            for method in cls.methods.values():
                if method.is_static and not method.params and method.name != CONSTRUCTOR:
                    entries.append(MethodRef(cls.name, method.name))
        return entries

    # -------------------------------------------------------------------- run
    def run(self, program: Program) -> FrozenSet[Flow]:
        """Concretely execute *program* and return its ground-truth flow set.

        Raises :class:`ConcreteExecutionError` if any entry point crashes.
        """
        full = self._full_program(program)
        sink_positions = self._sink_positions(full)
        flows: Set[Flow] = set()
        for entry in self.entry_points(program):
            interpreter = ConcreteTaintInterpreter(
                full, sink_positions, max_steps=self._max_steps
            )
            try:
                interpreter.execute_static(entry.class_name, entry.method_name)
            except InterpreterError as error:
                raise ConcreteExecutionError(entry, error) from error
            flows.update(interpreter.flows)
        return frozenset(flows)


def concrete_flows(program: Program, library_program: Optional[Program] = None) -> FrozenSet[Flow]:
    """Convenience wrapper: the ground-truth flows of one client program."""
    return ConcreteTaintAnalysis(library_program=library_program).run(program)


__all__ = [
    "ConcreteExecutionError",
    "ConcreteTaintAnalysis",
    "ConcreteTaintInterpreter",
    "concrete_flows",
]
