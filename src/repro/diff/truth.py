"""Concrete ground-truth flows, via provenance-tracking interpretation.

The differential fuzzer's oracle: run a client program for real on the
:mod:`repro.interp` interpreter (against the actual library implementation,
not any specification) and record exactly which secret objects reach sink
call sites.  A *concrete flow* uses the same coordinates as the static
client's :class:`~repro.client.taint.Flow` -- source method, sink method,
sink call site -- so the two flow sets compare directly: every concrete flow
the static analysis fails to report is a soundness divergence.

Tracking rides on the interpreter's observer hooks: :meth:`on_allocate`
records which method allocated every heap object (its *provenance*), and
:meth:`before_statement` inspects sink calls just before they execute,
checking whether the argument object was allocated inside a source method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.client.sources_sinks import SINK_METHODS, SOURCE_METHODS
from repro.client.taint import Flow
from repro.interp.errors import InterpreterError
from repro.interp.heap import HeapObject
from repro.interp.interpreter import Interpreter
from repro.lang.program import CONSTRUCTOR, MethodRef, Program
from repro.lang.statements import Call, Statement
from repro.library.registry import build_library_program, core_program


class ConcreteExecutionError(RuntimeError):
    """A scenario program crashed under concrete execution.

    Generated programs are straight-line and self-contained, so a crash is a
    generator bug (or a shrink candidate that deleted a definition) -- the
    checker reports it as its own divergence kind instead of a flow mismatch.
    """

    def __init__(self, entry: MethodRef, cause: InterpreterError):
        super().__init__(f"{entry}: {type(cause).__name__}: {cause}")
        self.entry = entry
        self.cause = cause


class ConcreteTaintInterpreter(Interpreter):
    """An interpreter that watches secrets travel from sources to sinks."""

    observing = True  # opt into the instrumented execution loop

    def __init__(self, program: Program, sink_positions: Dict[str, List[Tuple[str, str, int]]], **kwargs):
        super().__init__(program, **kwargs)
        self._sink_positions = sink_positions
        #: object id -> (class, method) that allocated it
        self.provenance: Dict[int, Tuple[str, str]] = {}
        self.flows: Set[Flow] = set()

    # ------------------------------------------------------------------ hooks
    def on_allocate(self, obj: HeapObject) -> None:
        current = self.current_method
        if current is not None:
            self.provenance[obj.object_id] = (current.class_name, current.method_name)

    def before_statement(self, ref: MethodRef, index: int, statement: Statement, env) -> None:
        if not isinstance(statement, Call) or statement.base is None or not statement.args:
            return
        candidates = self._sink_positions.get(statement.method_name)
        if not candidates:
            return
        receiver = env.get(statement.base)
        if not isinstance(receiver, HeapObject):
            return
        for sink_class, sink_method, position in candidates:
            if receiver.class_name != sink_class or position >= len(statement.args):
                continue
            argument = env.get(statement.args[position])
            if not isinstance(argument, HeapObject):
                continue
            source = self.provenance.get(argument.object_id)
            if source is None or source not in SOURCE_METHODS:
                continue
            self.flows.add(
                Flow(
                    source_class=source[0],
                    source_method=source[1],
                    sink_class=sink_class,
                    sink_method=sink_method,
                    sink_caller_class=ref.class_name,
                    sink_caller_method=ref.method_name,
                    sink_statement_index=index,
                )
            )


class ConcreteTaintAnalysis:
    """Executes every entry point of a client program and collects flows.

    Entry points are the static, parameterless methods of the program's
    non-library classes (the ``handlerN`` methods every scenario family
    emits), each executed on a fresh heap -- mirroring how the static client
    treats methods as independent roots.
    """

    def __init__(self, library_program: Optional[Program] = None, max_steps: int = 200_000):
        library = library_program if library_program is not None else build_library_program()
        self._core_names = core_program(library).class_names()
        self._library = library
        self._max_steps = max_steps

    # ------------------------------------------------------------------ setup
    def _full_program(self, program: Program) -> Program:
        from repro.client.sources_sinks import build_framework_program

        return (
            program.merged_with(self._library)
            .merged_with(build_framework_program())
        )

    @staticmethod
    def _sink_positions(program: Program) -> Dict[str, List[Tuple[str, str, int]]]:
        """sink method name -> [(sink class, sink method, argument position)]."""
        positions: Dict[str, List[Tuple[str, str, int]]] = {}
        for (sink_class, sink_method), parameter in sorted(SINK_METHODS.items()):
            position = 0
            if program.has_class(sink_class):
                ref = program.resolve_method(sink_class, sink_method)
                if ref is not None:
                    names = program.method_def(ref).parameter_names()
                    if parameter in names:
                        position = names.index(parameter)
            positions.setdefault(sink_method, []).append((sink_class, sink_method, position))
        return positions

    @staticmethod
    def entry_points(program: Program) -> List[MethodRef]:
        """The static, parameterless non-library methods, in program order."""
        entries = []
        for cls in program:
            if cls.is_library:
                continue
            for method in cls.methods.values():
                if method.is_static and not method.params and method.name != CONSTRUCTOR:
                    entries.append(MethodRef(cls.name, method.name))
        return entries

    # -------------------------------------------------------------------- run
    def run(self, program: Program) -> FrozenSet[Flow]:
        """Concretely execute *program* and return its ground-truth flow set.

        Raises :class:`ConcreteExecutionError` if any entry point crashes.
        """
        full = self._full_program(program)
        sink_positions = self._sink_positions(full)
        flows: Set[Flow] = set()
        for entry in self.entry_points(program):
            interpreter = ConcreteTaintInterpreter(
                full, sink_positions, max_steps=self._max_steps
            )
            try:
                interpreter.execute_static(entry.class_name, entry.method_name)
            except InterpreterError as error:
                raise ConcreteExecutionError(entry, error) from error
            flows.update(interpreter.flows)
        return frozenset(flows)


def concrete_flows(program: Program, library_program: Optional[Program] = None) -> FrozenSet[Flow]:
    """Convenience wrapper: the ground-truth flows of one client program."""
    return ConcreteTaintAnalysis(library_program=library_program).run(program)


# ------------------------------------------------------------ boundary tracing
@dataclass(frozen=True)
class LibraryCallEvent:
    """One client-level call across the library interface, with object ids.

    The repair subsystem replays a counterexample through this tracer and
    reconstructs, from the recorded heap-object identities, the sequence of
    interface variables a secret object travelled through -- which is exactly
    a candidate path-specification word.  ``class_name`` is the *interface*
    class the call resolves to (the receiver's concrete class, or the first
    ancestor the interface knows, e.g. ``ListItr`` -> ``Iterator``).
    """

    index: int  # global chronological sequence number
    class_name: str
    method_name: str
    #: object identities are opaque hashables: raw heap ids inside one
    #: interpreter, ``(entry ordinal, heap id)`` pairs in a merged trace
    receiver: Optional[object]
    args: Tuple[Tuple[str, Optional[object]], ...]  # (param name, object id or None)
    result: Optional[object]  # returned heap object id, if any


class ProvenanceTraceInterpreter(Interpreter):
    """Records allocation provenance and client-level library-boundary calls.

    Two observations per execution:

    * :attr:`provenance` -- object id -> ``(class, method)`` that allocated it
      (same convention as :class:`ConcreteTaintInterpreter`), used to identify
      the secret objects of a missed flow;
    * :attr:`events` -- every :class:`LibraryCallEvent`: a call executed by a
      *client* method whose receiver resolves to a method of the given
      library interface.  Calls made inside library code are deliberately not
      events: path specifications summarize library internals, so the word
      reconstruction must only see the boundary.
    """

    observing = True

    def __init__(self, program: Program, interface, client_classes: Set[str], **kwargs):
        super().__init__(program, **kwargs)
        self.interface = interface
        self._client_classes = set(client_classes)
        self.provenance: Dict[int, Tuple[str, str]] = {}
        self.events: List[LibraryCallEvent] = []
        self._interface_keys: Dict[Tuple[str, str], Optional[Tuple[str, str]]] = {}

    # ------------------------------------------------------------------ hooks
    def on_allocate(self, obj: HeapObject) -> None:
        current = self.current_method
        if current is not None:
            self.provenance[obj.object_id] = (current.class_name, current.method_name)

    def _interface_key(self, class_name: str, method_name: str) -> Optional[Tuple[str, str]]:
        """The interface ``(class, method)`` a concrete receiver resolves to."""
        cache_key = (class_name, method_name)
        if cache_key not in self._interface_keys:
            resolved: Optional[Tuple[str, str]] = None
            for ancestor in self.program.superclass_chain(class_name):
                if self.interface.has_method(ancestor, method_name):
                    resolved = (ancestor, method_name)
                    break
            self._interface_keys[cache_key] = resolved
        return self._interface_keys[cache_key]

    def after_statement(self, ref: MethodRef, index: int, statement: Statement, env) -> None:
        if ref.class_name not in self._client_classes:
            return
        if not isinstance(statement, Call) or statement.base is None:
            return
        receiver = env.get(statement.base)
        if not isinstance(receiver, HeapObject):
            return
        key = self._interface_key(receiver.class_name, statement.method_name)
        if key is None:
            return
        signature = self.interface.method(*key)
        args: List[Tuple[str, Optional[int]]] = []
        for position, (name, _type) in enumerate(signature.params):
            value = None
            if position < len(statement.args):
                value = env.get(statement.args[position])
            args.append((name, value.object_id if isinstance(value, HeapObject) else None))
        result = env.get(statement.target) if statement.target is not None else None
        self.events.append(
            LibraryCallEvent(
                index=len(self.events),
                class_name=key[0],
                method_name=key[1],
                receiver=receiver.object_id,
                args=tuple(args),
                result=result.object_id if isinstance(result, HeapObject) else None,
            )
        )


@dataclass
class BoundaryTrace:
    """The provenance trace of one client program: events + allocation sites."""

    events: List[LibraryCallEvent]
    provenance: Dict[object, Tuple[str, str]]  # object id -> allocation site

    def allocated_by(self, class_name: str, method_name: str) -> FrozenSet:
        """Ids of every object allocated inside ``class_name.method_name``."""
        return frozenset(
            object_id
            for object_id, site in self.provenance.items()
            if site == (class_name, method_name)
        )


def trace_library_calls(
    program: Program,
    interface,
    library_program: Optional[Program] = None,
    max_steps: int = 200_000,
) -> BoundaryTrace:
    """Execute every entry point of *program* and record its boundary trace.

    Entry points, program assembly, and crash behaviour mirror
    :class:`ConcreteTaintAnalysis` exactly -- the trace describes the same
    executions that produced the ground-truth flows the checker diverged on.
    All entry points share one event list (indices stay globally unique and
    chronological) but each runs on a fresh heap, so object ids never collide
    across entries.
    """
    from repro.client.sources_sinks import build_framework_program

    library = library_program if library_program is not None else build_library_program()
    full = program.merged_with(library).merged_with(build_framework_program())
    client_classes = {cls.name for cls in program if not cls.is_library}

    events: List[LibraryCallEvent] = []
    provenance: Dict[Tuple[int, int], Tuple[str, str]] = {}
    for ordinal, entry in enumerate(ConcreteTaintAnalysis.entry_points(program)):
        interpreter = ProvenanceTraceInterpreter(
            full, interface, client_classes, max_steps=max_steps
        )
        try:
            interpreter.execute_static(entry.class_name, entry.method_name)
        except InterpreterError as error:
            raise ConcreteExecutionError(entry, error) from error
        offset = len(events)
        # each entry runs on a fresh heap, so raw object ids restart from
        # zero; tagging them with the entry's ordinal keeps chains from one
        # handler from accidentally linking to objects of another
        shifted = lambda object_id: None if object_id is None else (ordinal, object_id)  # noqa: E731
        for event in interpreter.events:
            events.append(
                LibraryCallEvent(
                    index=offset + event.index,
                    class_name=event.class_name,
                    method_name=event.method_name,
                    receiver=shifted(event.receiver),
                    args=tuple((name, shifted(object_id)) for name, object_id in event.args),
                    result=shifted(event.result),
                )
            )
        for object_id, site in interpreter.provenance.items():
            provenance[(ordinal, object_id)] = site
    return BoundaryTrace(events=events, provenance=provenance)


__all__ = [
    "BoundaryTrace",
    "ConcreteExecutionError",
    "ConcreteTaintAnalysis",
    "ConcreteTaintInterpreter",
    "LibraryCallEvent",
    "ProvenanceTraceInterpreter",
    "concrete_flows",
    "trace_library_calls",
]
