"""Mutation operators over :mod:`repro.lang` programs.

The guided campaign (:mod:`repro.diff.guided`) evolves its corpus by
mutating coverage-novel programs instead of generating every candidate from
scratch.  Each operator here takes a client program, a seeded
``random.Random`` and a :class:`MutationContext`, and either returns a new
program or ``None`` when no applicable edit exists.  The contract every
operator upholds (and the property tests in ``tests/test_diff_mutate.py``
enforce) is that a returned program is *validate-clean*: merged with the
library and framework environment it passes
:func:`repro.lang.validate.validate_program`, and it round-trips through
:mod:`repro.lang.serialize` to a stable digest.

Validity here is static; a mutant may still crash the concrete interpreter
(an out-of-bounds ``aget``, say).  The guided campaign screens candidates
against the interpreter before spending a differential check on them, so the
operators stay simple and local.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.diff.coverage import tracked_classes
from repro.lang.program import ClassDef, MethodDef, Program, RECEIVER
from repro.lang.statements import Call, New, Return, Statement
from repro.lang.validate import ValidationError, validate_program
from repro.specs.variables import LibraryInterface

#: category label for constant-holding locals (mirrors coverage.tracked_classes)
_CONST = "$const"

#: maximum statements a mutant program may reach (duplicate / splice / crossover)
MAX_STATEMENTS = 160

#: maximum length of a spliced statement slice
_MAX_SLICE = 6


@dataclass
class MutationContext:
    """Shared, immutable inputs of every operator (picklable)."""

    interface: LibraryInterface
    env_program: Program
    max_statements: int = MAX_STATEMENTS

    def is_valid(self, program: Program) -> bool:
        """True when *program*, merged with the library environment, validates."""
        try:
            validate_program(self.env_program.merged_with(program))
        except ValidationError:
            return False
        return True


def build_mutation_context(
    library_program: Optional[Program] = None,
    interface: Optional[LibraryInterface] = None,
    max_statements: int = MAX_STATEMENTS,
) -> MutationContext:
    from repro.client.sources_sinks import build_framework_program
    from repro.library.registry import build_interface, build_library_program

    library = library_program if library_program is not None else build_library_program()
    if interface is None:
        interface = build_interface(library)
    env = library.merged_with(build_framework_program())
    return MutationContext(interface=interface, env_program=env, max_statements=max_statements)


# ------------------------------------------------------------------- helpers
def _client_methods(program: Program) -> List[Tuple[str, str]]:
    """Deterministically ordered (class, method) pairs with editable bodies."""
    pairs = []
    for cls in program:
        if cls.is_library:
            continue
        for method in cls.methods.values():
            if method.body:
                pairs.append((cls.name, method.name))
    return sorted(pairs)


def _with_body(
    program: Program, class_name: str, method_name: str, body: Sequence[Statement]
) -> Program:
    cls = program.class_def(class_name)
    method = replace(cls.methods[method_name], body=tuple(body))
    updated = Program(program.classes())
    updated.replace_class(cls.with_method(method))
    return updated


def _used_names(method: MethodDef) -> Set[str]:
    names: Set[str] = {p.name for p in method.params}
    for statement in method.body:
        defined = statement.defined_variable()
        if defined is not None:
            names.add(defined)
        names.update(statement.used_variables())
    return names


def _fresh(stem: str, used: Set[str]) -> str:
    if stem not in used:
        used.add(stem)
        return stem
    index = 2
    while f"{stem}_m{index}" in used:
        index += 1
    name = f"{stem}_m{index}"
    used.add(name)
    return name


def _used_later(body: Sequence[Statement], index: int, name: str) -> bool:
    return any(name in body[later].used_variables() for later in range(index + 1, len(body)))


def _rename_defs(statement: Statement, mapping: Dict[str, str]) -> Statement:
    """Rewrite *statement* under *mapping* (applied to defs and uses alike)."""
    if isinstance(statement, Call):
        return replace(
            statement,
            target=mapping.get(statement.target, statement.target)
            if statement.target is not None
            else None,
            base=mapping.get(statement.base, statement.base)
            if statement.base is not None
            else None,
            args=tuple(mapping.get(a, a) for a in statement.args),
        )
    if isinstance(statement, New):
        return replace(
            statement,
            target=mapping.get(statement.target, statement.target),
            args=tuple(mapping.get(a, a) for a in statement.args),
        )
    fields = {}
    for name in ("target", "base", "source", "value"):
        if hasattr(statement, name):
            value = getattr(statement, name)
            if isinstance(value, str) and name != "value":
                fields[name] = mapping.get(value, value)
    if isinstance(statement, Return) and statement.value is not None:
        fields["value"] = mapping.get(statement.value, statement.value)
    return replace(statement, **fields) if fields else statement


def _category(name: str, classes: Dict[str, str], defined: Set[str]) -> Optional[str]:
    """Interchangeability category: a tracked class, ``$const`` or ``"?"``."""
    if name in classes:
        return classes[name]
    if name in defined:
        return "?"
    return None


def _candidates_by_category(
    body: Sequence[Statement],
    params: Sequence[str],
    classes: Dict[str, str],
    upto: Optional[int] = None,
) -> Dict[str, List[str]]:
    """Variables available before statement *upto*, grouped by category."""
    available: List[str] = list(params)
    seen = set(available)
    for index, statement in enumerate(body):
        if upto is not None and index >= upto:
            break
        defined = statement.defined_variable()
        if defined is not None and defined not in seen:
            seen.add(defined)
            available.append(defined)
    grouped: Dict[str, List[str]] = {}
    for name in available:
        grouped.setdefault(classes.get(name, "?"), []).append(name)
    return grouped


# ----------------------------------------------------------------- operators
def delete_statement(
    program: Program, rng: random.Random, ctx: MutationContext
) -> Optional[Program]:
    """Remove one statement whose result no later statement reads."""
    pairs = _client_methods(program)
    if not pairs:
        return None
    rng.shuffle(pairs)
    for class_name, method_name in pairs:
        method = program.class_def(class_name).methods[method_name]
        body = method.body
        deletable = [
            i
            for i, statement in enumerate(body)
            if not isinstance(statement, Return)
            and (
                statement.defined_variable() is None
                or not _used_later(body, i, statement.defined_variable())
            )
        ]
        if len(body) <= 1 or not deletable:
            continue
        index = rng.choice(deletable)
        mutant = _with_body(
            program, class_name, method_name, body[:index] + body[index + 1 :]
        )
        if ctx.is_valid(mutant):
            return mutant
    return None


def duplicate_statement(
    program: Program, rng: random.Random, ctx: MutationContext
) -> Optional[Program]:
    """Re-run one statement, writing any result into a fresh local."""
    if program.statement_count() + 1 > ctx.max_statements:
        return None
    pairs = _client_methods(program)
    if not pairs:
        return None
    rng.shuffle(pairs)
    for class_name, method_name in pairs:
        method = program.class_def(class_name).methods[method_name]
        body = method.body
        candidates = [i for i, s in enumerate(body) if not isinstance(s, Return)]
        if not candidates:
            continue
        index = rng.choice(candidates)
        statement = body[index]
        defined = statement.defined_variable()
        copy = statement
        if defined is not None:
            used = _used_names(method)
            copy = _rename_defs(statement, {defined: _fresh(defined, used)})
            # a duplicate must keep reading the *original* inputs
            copy = replace(copy, **{
                name: getattr(statement, name)
                for name in ("base", "source", "args")
                if hasattr(statement, name)
            })
        mutant = _with_body(
            program,
            class_name,
            method_name,
            body[: index + 1] + (copy,) + body[index + 1 :],
        )
        if ctx.is_valid(mutant):
            return mutant
    return None


def splice_statements(
    program: Program, rng: random.Random, ctx: MutationContext
) -> Optional[Program]:
    """Copy a short def-closed slice from one method to the end of another.

    Free variables of the slice are re-bound to destination variables of the
    same category (same tracked library class, constant for constant,
    untracked for untracked); defined variables get fresh names.  Slices
    touching ``this``, ``Return`` or field accesses are skipped -- they are
    the forms whose meaning is method-local.
    """
    pairs = _client_methods(program)
    if len(pairs) < 1:
        return None
    for _attempt in range(6):
        src_class, src_method = rng.choice(pairs)
        dst_class, dst_method = rng.choice(pairs)
        source = program.class_def(src_class).methods[src_method]
        dest = program.class_def(dst_class).methods[dst_method]
        if not source.body:
            continue
        length = rng.randint(1, min(_MAX_SLICE, len(source.body)))
        start = rng.randint(0, len(source.body) - length)
        slice_ = source.body[start : start + length]
        if any(
            isinstance(s, Return)
            or RECEIVER in s.used_variables()
            or hasattr(s, "field_name")  # Store / Load: field meaning is class-local
            for s in slice_
        ):
            continue
        if program.statement_count() + length > ctx.max_statements:
            return None
        src_classes = tracked_classes(source.body, ctx.interface, upto=start)
        src_defined = {p.name for p in source.params}
        for statement in source.body[:start]:
            defined = statement.defined_variable()
            if defined is not None:
                src_defined.add(defined)

        dst_classes = tracked_classes(dest.body, ctx.interface)
        dst_candidates = _candidates_by_category(
            dest.body, [p.name for p in dest.params], dst_classes
        )

        # destination body ends in Return? insert before it
        insert_at = len(dest.body)
        while insert_at > 0 and isinstance(dest.body[insert_at - 1], Return):
            insert_at -= 1

        mapping: Dict[str, str] = {}
        used = _used_names(dest)
        if src_class == dst_class and src_method == dst_method:
            used |= _used_names(source)
        bound: Set[str] = set()
        ok = True
        for statement in slice_:
            for name in statement.used_variables():
                if name in bound or name in mapping:
                    continue
                category = _category(name, src_classes, src_defined)
                if category is None:
                    ok = False
                    break
                choices = dst_candidates.get(category, [])
                if not choices:
                    ok = False
                    break
                mapping[name] = rng.choice(choices)
            if not ok:
                break
            defined = statement.defined_variable()
            if defined is not None:
                mapping[defined] = _fresh(defined, used)
                bound.add(defined)
        if not ok:
            continue
        renamed = tuple(_rename_defs(s, mapping) for s in slice_)
        mutant = _with_body(
            program,
            dst_class,
            dst_method,
            dest.body[:insert_at] + renamed + dest.body[insert_at:],
        )
        if ctx.is_valid(mutant):
            return mutant
    return None


def rewire_receiver(
    program: Program, rng: random.Random, ctx: MutationContext
) -> Optional[Program]:
    """Redirect one library call to a different receiver of the same class."""
    pairs = _client_methods(program)
    rng.shuffle(pairs)
    for class_name, method_name in pairs:
        method = program.class_def(class_name).methods[method_name]
        body = method.body
        classes = tracked_classes(body, ctx.interface)
        options = []
        for index, statement in enumerate(body):
            if not isinstance(statement, Call) or statement.base is None:
                continue
            at_index = tracked_classes(body, ctx.interface, upto=index)
            receiver_class = at_index.get(statement.base)
            if receiver_class is None or receiver_class == _CONST:
                continue
            if not ctx.interface.has_method(receiver_class, statement.method_name):
                continue
            grouped = _candidates_by_category(
                body, [p.name for p in method.params], at_index, upto=index
            )
            others = [
                name
                for name in grouped.get(receiver_class, [])
                if name != statement.base
            ]
            if others:
                options.append((index, others))
        if not options:
            continue
        index, others = rng.choice(options)
        statement = body[index]
        mutant_statement = replace(statement, base=rng.choice(others))
        mutant = _with_body(
            program,
            class_name,
            method_name,
            body[:index] + (mutant_statement,) + body[index + 1 :],
        )
        if ctx.is_valid(mutant):
            return mutant
    return None


def rewire_argument(
    program: Program, rng: random.Random, ctx: MutationContext
) -> Optional[Program]:
    """Swap one call argument for another variable of the same category."""
    pairs = _client_methods(program)
    rng.shuffle(pairs)
    for class_name, method_name in pairs:
        method = program.class_def(class_name).methods[method_name]
        body = method.body
        options = []
        for index, statement in enumerate(body):
            if not isinstance(statement, (Call, New)) or not statement.args:
                continue
            at_index = tracked_classes(body, ctx.interface, upto=index)
            defined_before = {p.name for p in method.params}
            for earlier in body[:index]:
                defined = earlier.defined_variable()
                if defined is not None:
                    defined_before.add(defined)
            grouped = _candidates_by_category(
                body, [p.name for p in method.params], at_index, upto=index
            )
            for position, arg in enumerate(statement.args):
                category = _category(arg, at_index, defined_before)
                if category is None:
                    continue
                others = [n for n in grouped.get(category, []) if n != arg]
                if others:
                    options.append((index, position, others))
        if not options:
            continue
        index, position, others = rng.choice(options)
        statement = body[index]
        args = list(statement.args)
        args[position] = rng.choice(others)
        mutant_statement = replace(statement, args=tuple(args))
        mutant = _with_body(
            program,
            class_name,
            method_name,
            body[:index] + (mutant_statement,) + body[index + 1 :],
        )
        if ctx.is_valid(mutant):
            return mutant
    return None


def substitute_method(
    program: Program, rng: random.Random, ctx: MutationContext
) -> Optional[Program]:
    """Replace one library call with a signature-compatible sibling method.

    Compatible means: same receiver class, identical parameter-type tuple and
    the same reference-ness of the return value; and either the return types
    match exactly, or the call's result is discarded / never read.
    """
    signatures_by_class: Dict[str, List] = {}
    for signature in ctx.interface.methods():
        signatures_by_class.setdefault(signature.class_name, []).append(signature)
    pairs = _client_methods(program)
    rng.shuffle(pairs)
    for class_name, method_name in pairs:
        method = program.class_def(class_name).methods[method_name]
        body = method.body
        options = []
        for index, statement in enumerate(body):
            if not isinstance(statement, Call) or statement.base is None:
                continue
            at_index = tracked_classes(body, ctx.interface, upto=index)
            receiver_class = at_index.get(statement.base)
            if receiver_class is None or receiver_class == _CONST:
                continue
            if not ctx.interface.has_method(receiver_class, statement.method_name):
                continue
            current = ctx.interface.method(receiver_class, statement.method_name)
            result_read = statement.target is not None and _used_later(
                body, index, statement.target
            )
            substitutes = []
            for candidate in signatures_by_class.get(receiver_class, []):
                if candidate.method_name == statement.method_name:
                    continue
                if candidate.is_static != current.is_static:
                    continue
                if tuple(t for _n, t in candidate.params) != tuple(
                    t for _n, t in current.params
                ):
                    continue
                if candidate.returns_reference() != current.returns_reference():
                    continue
                if result_read and candidate.return_type != current.return_type:
                    continue
                substitutes.append(candidate.method_name)
            if substitutes:
                options.append((index, sorted(substitutes)))
        if not options:
            continue
        index, substitutes = rng.choice(options)
        statement = body[index]
        mutant_statement = replace(statement, method_name=rng.choice(substitutes))
        mutant = _with_body(
            program,
            class_name,
            method_name,
            body[:index] + (mutant_statement,) + body[index + 1 :],
        )
        if ctx.is_valid(mutant):
            return mutant
    return None


def crossover(
    program: Program, mate: Program, rng: random.Random, ctx: MutationContext
) -> Optional[Program]:
    """Combine two corpus programs into one (renaming colliding classes)."""
    mate_classes = [cls for cls in mate if not cls.is_library]
    if not mate_classes:
        return None
    if program.statement_count() + mate.statement_count() > ctx.max_statements:
        return None
    existing = set(program.class_names())
    renames: Dict[str, str] = {}
    for cls in mate_classes:
        if cls.name in existing:
            index = 2
            while f"{cls.name}X{index}" in existing or f"{cls.name}X{index}" in renames.values():
                index += 1
            renames[cls.name] = f"{cls.name}X{index}"
    combined = Program(program.classes())
    for cls in mate_classes:
        methods = {}
        for name, method in cls.methods.items():
            body = tuple(
                replace(s, class_name=renames[s.class_name])
                if isinstance(s, New) and s.class_name in renames
                else s
                for s in method.body
            )
            methods[name] = replace(method, body=body)
        superclass = renames.get(cls.superclass, cls.superclass) if cls.superclass else cls.superclass
        combined.replace_class(
            ClassDef(
                name=renames.get(cls.name, cls.name),
                superclass=superclass,
                fields=cls.fields,
                methods=methods,
                is_library=False,
            )
        )
    if ctx.is_valid(combined):
        return combined
    return None


#: named registry, in the deterministic order the scheduler draws from
MUTATORS = {
    "delete": delete_statement,
    "duplicate": duplicate_statement,
    "splice": splice_statements,
    "rewire-receiver": rewire_receiver,
    "rewire-argument": rewire_argument,
    "substitute": substitute_method,
}

_MUTATOR_NAMES = tuple(MUTATORS)


def mutate_program(
    program: Program,
    rng: random.Random,
    ctx: MutationContext,
    mates: Sequence[Program] = (),
) -> Optional[Tuple[str, Program]]:
    """Apply one randomly chosen applicable operator; ``None`` if all fail."""
    names = list(_MUTATOR_NAMES)
    if mates:
        names.append("crossover")
    for _attempt in range(8):
        name = rng.choice(names)
        if name == "crossover":
            mutant = crossover(program, rng.choice(list(mates)), rng, ctx)
        else:
            mutant = MUTATORS[name](program, rng, ctx)
        if mutant is not None:
            return name, mutant
    return None


__all__ = [
    "MAX_STATEMENTS",
    "MUTATORS",
    "MutationContext",
    "build_mutation_context",
    "crossover",
    "delete_statement",
    "duplicate_statement",
    "mutate_program",
    "rewire_argument",
    "rewire_receiver",
    "splice_statements",
    "substitute_method",
]
