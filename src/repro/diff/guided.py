"""The coverage-guided mutation campaign (``repro fuzz --guided``).

Where :func:`repro.diff.runner.run_fuzz` draws every program blind from the
family generators, the guided campaign is a search:

1. **seed** -- golden-corpus entries for the campaign's families are checked
   first (they encode everything past campaigns learned, including shrunk
   counterexamples);
2. **grow** -- each checked program is fingerprinted by its semantic
   coverage keys (:mod:`repro.diff.coverage`); programs that add coverage
   enter the live corpus;
3. **mutate** -- further candidates are mutants (:mod:`repro.diff.mutate`)
   of corpus programs, interleaved with fresh family scenarios so the search
   never starves, and screened against the concrete interpreter so a
   crashing mutant costs a retry, not a budget slot.

Scheduling is deterministic: candidates are generated parent-side at fixed
round boundaries from per-slot seeded RNGs, and results merge in slot order
-- so a ``--workers 4`` campaign produces a report and coverage map
bit-identical to a serial one (the same property the blind runner has).
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional, Tuple

from repro.diff.checker import DiffOutcome, DifferentialChecker
from repro.diff.corpus import GoldenEntry, corpus_files, load_corpus, write_corpus
from repro.diff.coverage import CoverageContext, CoverageMap, build_coverage_context
from repro.diff.families import _SEED_STRIDE, _camel, generate_scenario
from repro.diff.mutate import MutationContext, build_mutation_context, mutate_program
from repro.diff.runner import FuzzConfig, FuzzReport, _shrink_outcome, build_checker, golden_entries
from repro.diff.truth import ConcreteExecutionError
from repro.engine.events import (
    CorpusSeeded,
    CoverageGrown,
    DivergenceShrunk,
    EventSink,
    FuzzFinished,
    FuzzStarted,
    NullSink,
    ProgramChecked,
)
from repro.engine.executor import make_task_executor
from repro.lang.program import Program
from repro.lang.serialize import program_from_dict, program_to_dict
from repro.obs import trace as _trace

#: candidates are generated (and results merged) at these round boundaries,
#: so batch composition never depends on the worker count
_BATCH = 8

#: probability of drawing a fresh family scenario instead of a mutant
_FRESH_RATE = 0.25

#: mutation attempts per slot before falling back to a fresh scenario
_MUTATE_ATTEMPTS = 4


class _CorpusEntry:
    """One live-corpus member: a coverage-novel program and where it came from."""

    __slots__ = ("name", "family", "seed", "program", "origin")

    def __init__(self, name: str, family: str, seed: int, program: Program, origin: str):
        self.name = name
        self.family = family
        self.seed = seed
        self.program = program
        self.origin = origin


def _origin_kind(origin: str) -> str:
    return origin.split(":", 1)[0]


def _load_seeds(seed_corpus: Optional[str], families: Tuple[str, ...]) -> List[GoldenEntry]:
    """Golden entries matching the campaign families, in file/entry order."""
    if not seed_corpus:
        return []
    wanted = set(families)
    seeds: List[GoldenEntry] = []
    for path in corpus_files(seed_corpus):
        for entry in load_corpus(path):
            if entry.family in wanted:
                seeds.append(entry)
    return seeds


# ----------------------------------------------------------------- worker side
def run_guided_check_task(shared, payload) -> Tuple[DiffOutcome, Tuple[str, ...]]:
    """Check one candidate and fingerprint its coverage.

    Module-level and picklable-shared, like
    :func:`repro.diff.runner.run_check_task`; *shared* is ``(checker,
    shrink_enabled, coverage_context)``, *payload* is ``(name, family, seed,
    program_dict)`` -- the exact program, not a regenerable label.
    """
    checker, shrink_enabled, context = shared
    name, family, seed, program_dict = payload
    program = program_from_dict(program_dict)
    collected: List[str] = []

    def observe(points_to) -> None:
        collected.extend(context.keys_for_points_to(points_to))

    with _trace.span("fuzz.guided.check", program=name, family=family):
        keys = set(context.keys_for_program(program))
        outcome = checker.check_program(
            program,
            name,
            family=family,
            seed=seed,
            observers={context.pipeline: observe},
        )
        keys.update(collected)
        if outcome.diverged and shrink_enabled:
            with _trace.span("fuzz.shrink", program=name):
                outcome = _shrink_outcome(checker, program, outcome)
    return outcome, tuple(sorted(keys))


# ----------------------------------------------------------------- parent side
class GuidedCampaign:
    """Deterministic candidate scheduling plus corpus/coverage bookkeeping."""

    def __init__(
        self,
        config: FuzzConfig,
        checker: DifferentialChecker,
        coverage_context: CoverageContext,
        mutation_context: MutationContext,
        seeds: List[GoldenEntry],
    ):
        self.config = config
        self.checker = checker
        self.context = coverage_context
        self.mutation = mutation_context
        self.seeds = seeds
        self.coverage = CoverageMap()
        self.corpus: List[_CorpusEntry] = []
        self.origins: Dict[str, str] = {}  # checked name -> origin label
        self.programs: Dict[str, Program] = {}  # checked name -> exact program
        self.seeds_used = 0

    # ------------------------------------------------------------- candidates
    def next_candidate(self, index: int) -> Tuple[str, str, int, Program]:
        """The candidate for global slot *index* (parent-side, deterministic)."""
        rng = random.Random(self.config.seed * _SEED_STRIDE + index)
        if self.seeds_used < len(self.seeds):
            entry = self.seeds[self.seeds_used]
            self.seeds_used += 1
            name = f"Seed{index:04d}"
            self.origins[name] = f"seed:{entry.name}"
            return name, entry.family, entry.seed, entry.program
        if self.corpus and rng.random() >= _FRESH_RATE:
            candidate = self._mutant(index, rng)
            if candidate is not None:
                return candidate
        return self._fresh(index, rng)

    def _fresh(self, index: int, rng: random.Random) -> Tuple[str, str, int, Program]:
        family = self.config.families[index % len(self.config.families)]
        seed = self.config.seed * _SEED_STRIDE + index
        name = f"{_camel(family)}{index:04d}"
        scenario = generate_scenario(name, family, seed)
        self.origins[name] = f"fresh:{family}"
        return name, family, seed, scenario.program

    def _mutant(self, index: int, rng: random.Random) -> Optional[Tuple[str, str, int, Program]]:
        parent = rng.choice(self.corpus)
        mates = [entry.program for entry in self.corpus if entry is not parent]
        for _attempt in range(_MUTATE_ATTEMPTS):
            result = mutate_program(parent.program, rng, self.mutation, mates=mates)
            if result is None:
                continue
            op_name, mutant = result
            # screen against the interpreter: a crashing mutant is a fuzzer
            # artifact, not a specification gap -- retry instead of spending
            # a budget slot on it
            try:
                self.checker.truth.run(mutant)
            except ConcreteExecutionError:
                continue
            name = f"Mutant{index:04d}"
            self.origins[name] = f"{op_name}:{parent.name}"
            return name, parent.family, self.config.seed * _SEED_STRIDE + index, mutant
        return None

    # ----------------------------------------------------------------- results
    def admit(self, index: int, outcome: DiffOutcome, keys: Tuple[str, ...], program: Program):
        """Merge one slot's result; returns the CoverageGrown event or None."""
        self.programs[outcome.name] = program
        new = self.coverage.observe(keys)
        if new == 0:
            return None
        origin = self.origins.get(outcome.name, "?")
        self.corpus.append(
            _CorpusEntry(outcome.name, outcome.family, outcome.seed, program, origin)
        )
        return CoverageGrown(
            index=index,
            program=outcome.name,
            origin=origin,
            new_keys=new,
            total_keys=len(self.coverage),
            corpus_size=len(self.corpus),
        )

    def stats(self) -> Dict:
        by_origin: Dict[str, int] = {}
        for entry in self.corpus:
            kind = _origin_kind(entry.origin)
            by_origin[kind] = by_origin.get(kind, 0) + 1
        return {
            "programs": len(self.corpus),
            "seeds_loaded": len(self.seeds),
            "by_origin": dict(sorted(by_origin.items())),
            "coverage_keys": len(self.coverage),
            "coverage_digest": self.coverage.digest(),
        }


def run_guided_fuzz(
    config: FuzzConfig,
    events: Optional[EventSink] = None,
    checker: Optional[DifferentialChecker] = None,
    store=None,
    spec_id: Optional[str] = None,
    golden_out: Optional[str] = None,
    seed_corpus: Optional[str] = None,
    library_program=None,
    interface=None,
) -> FuzzReport:
    """Run one coverage-guided campaign end to end (the guided ``run_fuzz``)."""
    if not config.guided:
        from dataclasses import replace as _replace

        config = _replace(config, guided=True)
    events = events if events is not None else NullSink()
    if checker is None:
        checker = build_checker(
            config,
            library_program=library_program,
            interface=interface,
            store=store,
            spec_id=spec_id,
        )
    coverage_context = build_coverage_context(
        config.pipeline,
        library_program=library_program,
        interface=interface,
        store=store,
        spec_id=spec_id,
    )
    mutation_context = build_mutation_context(
        library_program=library_program, interface=interface
    )
    seeds = _load_seeds(seed_corpus, tuple(config.families))[: config.budget]
    campaign = GuidedCampaign(config, checker, coverage_context, mutation_context, seeds)

    executor = make_task_executor(config.workers)
    events.emit(
        FuzzStarted(
            budget=config.budget,
            families=tuple(config.families),
            pipeline=config.pipeline,
            executor=executor.name,
            workers=config.workers,
            seed=config.seed,
        )
    )
    events.emit(
        CorpusSeeded(
            source=seed_corpus or "(none)",
            entries=len(seeds),
            families=tuple(config.families),
        )
    )

    outcomes: List[DiffOutcome] = []
    started = time.perf_counter()
    shared = (checker, config.shrink, coverage_context)
    with _trace.span(
        "fuzz.guided.campaign",
        pipeline=config.pipeline,
        budget=config.budget,
        executor=executor.name,
    ):
        index = 0
        while index < config.budget:
            batch = min(_BATCH, config.budget - index)
            # candidate generation happens entirely parent-side, at round
            # boundaries, against the corpus as of this round -- the batch
            # composition is therefore independent of the worker count
            slots = [campaign.next_candidate(index + offset) for offset in range(batch)]
            payloads = [
                (name, family, seed, program_to_dict(program))
                for name, family, seed, program in slots
            ]
            results = executor.map(run_guided_check_task, shared, payloads)
            for offset, (outcome, keys) in enumerate(results):
                slot_index = index + offset
                program = slots[offset][3]
                if outcome.diverged and outcome.shrunk_program is None:
                    # mutants and seeds are not regenerable from (family,
                    # seed); carry the exact program so repair can ingest it
                    outcome.shrunk_program = program
                outcomes.append(outcome)
                events.emit(
                    ProgramChecked(
                        index=slot_index,
                        program=outcome.name,
                        family=outcome.family,
                        statements=outcome.statements,
                        concrete_flows=len(outcome.concrete),
                        diverged=outcome.diverged,
                    )
                )
                if outcome.diverged and config.shrink:
                    events.emit(
                        DivergenceShrunk(
                            program=outcome.name,
                            signatures=outcome.signatures(),
                            statements_before=outcome.statements,
                            statements_after=outcome.shrunk_program.statement_count(),
                            steps=outcome.shrink_steps,
                        )
                    )
                grown = campaign.admit(slot_index, outcome, keys, program)
                if grown is not None:
                    events.emit(grown)
            index += batch
    elapsed = time.perf_counter() - started

    report = FuzzReport(
        config=config,
        outcomes=outcomes,
        executor=executor.name,
        elapsed_seconds=elapsed,
        coverage=campaign.coverage,
        corpus_stats=campaign.stats(),
    )
    report.golden = golden_entries(report, programs=campaign.programs)
    if golden_out is not None:
        import os

        report.corpus_path = write_corpus(
            report.golden, os.path.join(golden_out, config.corpus_filename())
        )
    events.emit(
        FuzzFinished(
            programs=report.programs,
            diverged=len(report.diverged),
            shrunk=len(report.shrunk),
            elapsed_seconds=elapsed,
            golden_entries=len(report.golden),
        )
    )
    return report


__all__ = [
    "GuidedCampaign",
    "run_guided_check_task",
    "run_guided_fuzz",
]
