"""Differential fuzzing campaigns over the engine's task executors.

A campaign is: plan ``budget`` seeded scenarios round-robin across the
requested families, differentially check each one (shrinking divergent
programs in place), merge the outcomes in plan order, and persist the golden
entries.  The per-scenario work function is module-level and the shared
state (the precompiled :class:`~repro.diff.checker.DifferentialChecker`) is
picklable, so the same campaign fans across
:class:`~repro.engine.executor.ParallelTaskExecutor` worker processes --
and because scenario seeds derive from the plan (never from scheduling) and
:meth:`FuzzReport.canonical` excludes timing, a ``--workers 4`` report is
bit-identical to a serial one.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.diff.checker import DiffOutcome, DifferentialChecker, build_pipeline_analyzer
from repro.diff.corpus import COUNTEREXAMPLE, GoldenEntry, write_corpus
from repro.diff.families import DEFAULT_FAMILIES, generate_scenario, scenario_plan
from repro.diff.shrink import shrink_program
from repro.engine.events import (
    DivergenceShrunk,
    EventSink,
    FuzzFinished,
    FuzzStarted,
    NullSink,
    ProgramChecked,
)
from repro.engine.executor import make_task_executor
from repro.obs import trace as _trace

REPORT_FORMAT = "repro.diff.fuzz-report/1"


@dataclass(frozen=True)
class FuzzConfig:
    """Everything that determines a campaign's outcomes (and only that)."""

    families: Tuple[str, ...] = DEFAULT_FAMILIES
    budget: int = 100
    seed: int = 2018
    workers: int = 0
    pipeline: str = "ground_truth"  # primary pipeline under test
    cross_check: bool = True  # also run handwritten-model (implementation) Andersen
    engine_check: bool = False  # cross-check the compiled bitset solver per pipeline
    shrink: bool = True
    sample: int = 10  # passing programs frozen into the golden corpus
    guided: bool = False  # coverage-guided mutation mode (repro.diff.guided)

    def corpus_filename(self) -> str:
        """Distinct per (pipeline, families, seed): campaigns with different
        configurations must not overwrite each other's frozen corpus."""
        families = (
            "default" if tuple(self.families) == DEFAULT_FAMILIES else "+".join(self.families)
        )
        mode = "guided-" if self.guided else ""
        return f"fuzz-{mode}{self.pipeline}-{families}-seed{self.seed}.json"


@dataclass
class FuzzReport:
    """The merged result of one campaign."""

    config: FuzzConfig
    outcomes: List[DiffOutcome]
    executor: str
    elapsed_seconds: float = 0.0
    corpus_path: Optional[str] = None
    golden: List[GoldenEntry] = field(default_factory=list)
    # guided-mode extras (None for blind campaigns, keeping their encodings
    # byte-identical to previous releases)
    coverage: Optional[object] = None  # CoverageMap
    corpus_stats: Optional[Dict] = None

    @property
    def programs(self) -> int:
        return len(self.outcomes)

    @property
    def diverged(self) -> List[DiffOutcome]:
        return [outcome for outcome in self.outcomes if outcome.diverged]

    @property
    def shrunk(self) -> List[DiffOutcome]:
        return [outcome for outcome in self.diverged if outcome.shrunk_program is not None]

    @property
    def unshrunk(self) -> List[DiffOutcome]:
        """Divergent outcomes with no minimized counterexample attached."""
        return [outcome for outcome in self.diverged if outcome.shrunk_program is None]

    def families_covered(self) -> Tuple[str, ...]:
        return tuple(sorted({outcome.family for outcome in self.outcomes}))

    def spurious_totals(self) -> Dict[str, int]:
        """Spurious (extra, imprecise) static flows per pipeline.

        Missed flows are *unsoundness* and feed :mod:`repro.repair`; spurious
        flows are *imprecision* -- the over-approximation contract at work --
        and must never be "repaired" away.  Reporting them first-class is what
        lets the repair layer (and a human reading the report) tell the two
        apart.
        """
        totals: Dict[str, int] = {}
        for outcome in self.outcomes:
            for pipeline, count in outcome.spurious.items():
                totals[pipeline] = totals.get(pipeline, 0) + count
        return dict(sorted(totals.items()))

    def spurious_programs(self) -> int:
        """Programs for which at least one pipeline reported a spurious flow."""
        return sum(
            1 for outcome in self.outcomes if any(count for count in outcome.spurious.values())
        )

    def canonical(self) -> Dict:
        """The timing-free encoding serial and parallel campaigns share."""
        payload = {
            "format": REPORT_FORMAT,
            "families": list(self.config.families),
            "budget": self.config.budget,
            "seed": self.config.seed,
            "pipeline": self.config.pipeline,
            "cross_check": self.config.cross_check,
            "shrink": self.config.shrink,
            "outcomes": [outcome.canonical() for outcome in self.outcomes],
        }
        if self.config.engine_check:
            # only stamped when on, keeping older report encodings byte-stable
            payload["engine_check"] = True
        if self.config.guided:
            payload["guided"] = True
            payload["coverage"] = self.coverage.to_dict() if self.coverage is not None else None
            payload["corpus"] = self.corpus_stats
        return payload

    def to_dict(self, include_timing: bool = True) -> Dict:
        payload = self.canonical()
        spurious = self.spurious_totals()
        payload["spurious"] = {
            "by_pipeline": spurious,
            "programs": self.spurious_programs(),
            "flows": sum(spurious.values()),
        }
        payload["summary"] = {
            "programs": self.programs,
            "families_covered": list(self.families_covered()),
            "concrete_flows": sum(len(outcome.concrete) for outcome in self.outcomes),
            "diverged": len(self.diverged),
            "shrunk": len(self.shrunk),
            "unshrunk": len(self.unshrunk),
            "spurious_flows": sum(spurious.values()),
            "golden_entries": len(self.golden),
            "executor": self.executor,
        }
        if self.corpus_path is not None:
            payload["summary"]["corpus_path"] = self.corpus_path
        if self.config.guided and self.coverage is not None:
            payload["summary"]["coverage_keys"] = len(self.coverage)
            payload["summary"]["coverage_digest"] = self.coverage.digest()
        if include_timing:
            payload["summary"]["elapsed_seconds"] = self.elapsed_seconds
        return payload

    @classmethod
    def from_dict(cls, data: Dict) -> "FuzzReport":
        """Rebuild a report from its JSON encoding (``repro fuzz --out``).

        Only campaign-determining fields round-trip (``workers`` picks an
        executor, not an outcome, so it resets to serial); timing, corpus
        path and golden entries are not reconstructed.  This is the repair
        engine's ingestion path for report files.
        """
        declared = data.get("format")
        if declared != REPORT_FORMAT:
            raise ValueError(f"unsupported fuzz-report format {declared!r}")
        config = FuzzConfig(
            families=tuple(data["families"]),
            budget=int(data["budget"]),
            seed=int(data["seed"]),
            pipeline=data["pipeline"],
            cross_check=bool(data["cross_check"]),
            engine_check=bool(data.get("engine_check", False)),
            shrink=bool(data["shrink"]),
            guided=bool(data.get("guided", False)),
        )
        outcomes = [DiffOutcome.from_dict(entry) for entry in data["outcomes"]]
        report = cls(config=config, outcomes=outcomes, executor="serial")
        if config.guided and data.get("coverage") is not None:
            from repro.diff.coverage import CoverageMap

            report.coverage = CoverageMap.from_dict(data["coverage"])
            report.corpus_stats = data.get("corpus")
        return report


# ----------------------------------------------------------------- worker side
def run_check_task(shared, payload) -> DiffOutcome:
    """Check (and, on divergence, shrink) one planned scenario.

    Module-level so :class:`ParallelTaskExecutor` can pickle it; *shared* is
    ``(checker, shrink_enabled)``, shipped once per worker process.
    """
    checker, shrink_enabled = shared
    name, family, seed = payload
    with _trace.span("fuzz.check", program=name, family=family):
        scenario = generate_scenario(name, family, seed)
        outcome = checker.check(scenario)
        if outcome.diverged and shrink_enabled:
            with _trace.span("fuzz.shrink", program=name):
                outcome = _shrink_outcome(checker, scenario.program, outcome)
    return outcome


def _shrink_outcome(
    checker: DifferentialChecker, program, outcome: DiffOutcome
) -> DiffOutcome:
    """Minimize a divergent program, preserving its divergence signatures."""
    target = set(outcome.signatures())

    def still_diverges(candidate) -> bool:
        verdict = checker.check_program(
            candidate, outcome.name, family=outcome.family, seed=outcome.seed
        )
        return target.issubset(set(verdict.signatures()))

    result = shrink_program(program, still_diverges)
    final = checker.check_program(
        result.program, outcome.name, family=outcome.family, seed=outcome.seed
    )
    final.shrunk_program = result.program
    final.shrink_steps = result.steps
    # report the original size; the shrunk size is the shrunk program's own
    final.statements = outcome.statements
    return final


# ----------------------------------------------------------------- parent side
def build_checker(
    config: FuzzConfig,
    library_program=None,
    interface=None,
    store=None,
    spec_id: Optional[str] = None,
) -> DifferentialChecker:
    """Compile the campaign's pipelines once (shared across every scenario)."""
    from repro.library.registry import build_interface, build_library_program

    library = library_program if library_program is not None else build_library_program()
    if interface is None:
        interface = build_interface(library)
    analyzers = {
        config.pipeline: build_pipeline_analyzer(
            config.pipeline,
            library_program=library,
            interface=interface,
            store=store,
            spec_id=spec_id,
        )
    }
    if config.cross_check and config.pipeline != "implementation":
        analyzers["implementation"] = build_pipeline_analyzer(
            "implementation", library_program=library, interface=interface
        )
    return DifferentialChecker(
        analyzers, library_program=library, engine_check=config.engine_check
    )


def run_fuzz(
    config: FuzzConfig,
    events: Optional[EventSink] = None,
    checker: Optional[DifferentialChecker] = None,
    store=None,
    spec_id: Optional[str] = None,
    golden_out: Optional[str] = None,
) -> FuzzReport:
    """Run one differential fuzzing campaign end to end."""
    events = events if events is not None else NullSink()
    if checker is None:
        checker = build_checker(config, store=store, spec_id=spec_id)
    plan = scenario_plan(config.families, config.budget, config.seed)
    executor = make_task_executor(config.workers)
    events.emit(
        FuzzStarted(
            budget=config.budget,
            families=tuple(config.families),
            pipeline=config.pipeline,
            executor=executor.name,
            workers=config.workers,
            seed=config.seed,
        )
    )

    def on_result(index: int, outcome: DiffOutcome) -> None:
        events.emit(
            ProgramChecked(
                index=index,
                program=outcome.name,
                family=outcome.family,
                statements=outcome.statements,
                concrete_flows=len(outcome.concrete),
                diverged=outcome.diverged,
            )
        )
        if outcome.shrunk_program is not None:
            events.emit(
                DivergenceShrunk(
                    program=outcome.name,
                    signatures=outcome.signatures(),
                    statements_before=outcome.statements,
                    statements_after=outcome.shrunk_program.statement_count(),
                    steps=outcome.shrink_steps,
                )
            )

    started = time.perf_counter()
    with _trace.span(
        "fuzz.campaign",
        pipeline=config.pipeline,
        budget=config.budget,
        executor=executor.name,
    ):
        outcomes = executor.map(
            run_check_task, (checker, config.shrink), plan, on_result=on_result
        )
    elapsed = time.perf_counter() - started

    report = FuzzReport(
        config=config, outcomes=list(outcomes), executor=executor.name, elapsed_seconds=elapsed
    )
    report.golden = golden_entries(report)
    if golden_out is not None:
        import os

        report.corpus_path = write_corpus(
            report.golden, os.path.join(golden_out, config.corpus_filename())
        )
    events.emit(
        FuzzFinished(
            programs=report.programs,
            diverged=len(report.diverged),
            shrunk=len(report.shrunk),
            elapsed_seconds=elapsed,
            golden_entries=len(report.golden),
        )
    )
    return report


def golden_entries(
    report: FuzzReport, programs: Optional[Dict[str, "object"]] = None
) -> List[GoldenEntry]:
    """Select what a campaign freezes: every counterexample + a seeded sample.

    All shrunk counterexamples are kept.  Passing programs are sampled with
    a :class:`random.Random` seeded from the campaign seed, so the same
    campaign always freezes the same corpus; sampled entries are frozen in
    plan order.

    *programs* optionally maps outcome names to the exact checked programs
    (the guided campaign's mutants are not regenerable from their (family,
    seed) label); when absent, programs are regenerated from the plan.
    """

    def program_for(outcome: DiffOutcome):
        if programs is not None and outcome.name in programs:
            return programs[outcome.name]
        return generate_scenario(outcome.name, outcome.family, outcome.seed).program

    entries: List[GoldenEntry] = []
    passing: List[DiffOutcome] = []
    for outcome in report.outcomes:
        if outcome.diverged:
            entries.append(GoldenEntry.from_outcome(outcome, program_for(outcome)))
        else:
            passing.append(outcome)
    rng = random.Random(report.config.seed)
    count = min(report.config.sample, len(passing))
    sampled = sorted(rng.sample(range(len(passing)), count)) if count else []
    for index in sampled:
        outcome = passing[index]
        entries.append(GoldenEntry.from_outcome(outcome, program_for(outcome)))
    return entries


__all__ = [
    "REPORT_FORMAT",
    "FuzzConfig",
    "FuzzReport",
    "build_checker",
    "golden_entries",
    "run_check_task",
    "run_fuzz",
]
