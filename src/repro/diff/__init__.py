"""Differential fuzzing of the analysis stack (see ``docs/diff.md``).

The question the whole project hinges on is whether the specification-based
static taint analysis *over-approximates* real library behaviour on programs
nobody hand-picked.  This package turns that question into a fuzzable
property:

1. :mod:`repro.diff.families` generates seeded client programs from several
   *scenario families* (deep aliasing/copy chains, nested heterogeneous
   containers, load/store interleavings, plus the classic benchgen taint
   app);
2. :mod:`repro.diff.truth` executes each program concretely through the
   :mod:`repro.interp` interpreter, tracking which secret objects actually
   reach sink call sites -- the ground-truth flow set;
3. :mod:`repro.diff.checker` runs the same program through the
   specification-based :class:`~repro.service.analyzer.ClientAnalyzer`
   pipelines (ground-truth specs, handwritten specs, a stored learned spec)
   and the handwritten-model Andersen cross-check (the library
   implementation itself), reporting every concrete flow a pipeline misses;
4. :mod:`repro.diff.shrink` minimizes each divergent program by greedy
   statement deletion with re-check;
5. :mod:`repro.diff.corpus` persists shrunk counterexamples and a seeded
   sample of passing programs as a golden JSON corpus (replayed forever by
   ``tests/test_diff_golden.py``);
6. :mod:`repro.diff.runner` fans a whole campaign across the engine's
   task executors (parallel reports bit-identical to serial) with
   ``engine.events`` telemetry.  ``repro fuzz`` is the CLI front end.
7. :mod:`repro.diff.coverage`, :mod:`repro.diff.mutate` and
   :mod:`repro.diff.guided` turn the blind lottery into a search:
   every checked program is fingerprinted by semantic coverage keys
   (automaton transitions + points-to edge shapes), coverage-novel programs
   enter a live corpus, and further candidates are mutants of corpus
   programs seeded from the golden corpus.  ``repro fuzz --guided`` is the
   front end; determinism (parallel == serial, bit for bit) is preserved.
"""

from repro.diff.checker import (
    ENGINE_MISMATCH,
    DiffOutcome,
    DifferentialChecker,
    Divergence,
    build_pipeline_analyzer,
)
from repro.diff.corpus import GoldenEntry, load_corpus, write_corpus
from repro.diff.coverage import CoverageContext, CoverageMap, build_coverage_context
from repro.diff.families import (
    DEFAULT_FAMILIES,
    FAMILIES,
    GeneratedScenario,
    generate_scenario,
    scenario_plan,
)
from repro.diff.guided import GuidedCampaign, run_guided_fuzz
from repro.diff.mutate import (
    MUTATORS,
    MutationContext,
    build_mutation_context,
    crossover,
    mutate_program,
)
from repro.diff.runner import FuzzConfig, FuzzReport, run_fuzz
from repro.diff.shrink import ShrinkResult, shrink_program
from repro.diff.truth import (
    BoundaryTrace,
    ConcreteExecutionError,
    ConcreteTaintAnalysis,
    LibraryCallEvent,
    concrete_flows,
    trace_library_calls,
)

__all__ = [
    "BoundaryTrace",
    "ConcreteExecutionError",
    "ConcreteTaintAnalysis",
    "CoverageContext",
    "CoverageMap",
    "DEFAULT_FAMILIES",
    "DiffOutcome",
    "DifferentialChecker",
    "Divergence",
    "ENGINE_MISMATCH",
    "FAMILIES",
    "FuzzConfig",
    "FuzzReport",
    "GeneratedScenario",
    "GoldenEntry",
    "GuidedCampaign",
    "LibraryCallEvent",
    "MUTATORS",
    "MutationContext",
    "ShrinkResult",
    "build_coverage_context",
    "build_mutation_context",
    "build_pipeline_analyzer",
    "concrete_flows",
    "crossover",
    "generate_scenario",
    "load_corpus",
    "mutate_program",
    "run_fuzz",
    "run_guided_fuzz",
    "scenario_plan",
    "shrink_program",
    "trace_library_calls",
    "write_corpus",
]
