"""Warm analysis workers behind a bounded request queue.

The whole point of the daemon is amortization: a one-shot ``repro analyze``
pays spec loading + code-fragment compilation + base-program merging on
every invocation, while a :class:`WarmWorkerPool` worker pays it **once at
startup** (emitting :class:`~repro.engine.events.SpecCompiled` so the cost
is observable) and then answers any number of requests against the resident
:class:`~repro.service.analyzer.ClientAnalyzer`.

Three properties the HTTP front end relies on:

* **Backpressure** -- the request queue is bounded; :meth:`WarmWorkerPool.submit`
  raises :class:`PoolSaturated` instead of queueing unboundedly, which the
  HTTP layer translates to ``503`` + ``Retry-After``.
* **Hot reload** -- :meth:`WarmWorkerPool.poll_once` re-reads the store's
  append-only index; when a newer latest spec appears, workers lazily
  recompile before their *next* request while in-flight requests finish on
  the analyzer they started with.
* **Bit-identical answers** -- workers serve requests through
  :func:`repro.service.api.run_request`, the same cheap half used by
  :func:`~repro.service.api.handle_request`, so a daemon response equals a
  one-shot response for the same request document.
* **Shadow canaries** -- :meth:`WarmWorkerPool.set_shadow` installs an
  observer (see :class:`repro.plane.canary.ShadowCanary`) that mirrors a
  sampled fraction of live requests through a *candidate* spec **after** the
  incumbent's response has been served.  The shadow run shares the worker's
  analyzer cache, never touches the served response, and a shadow failure is
  recorded on the observer rather than surfaced to the client.

Example::

    >>> pool = WarmWorkerPool(store, workers=4, queue_depth=16)
    >>> pool.start()                       # 4 analyzers compiled, once each
    >>> future = pool.submit(AnalyzeRequest(suite=SuiteSpec(count=5)))
    >>> response = future.result()
    >>> pool.stop()
"""

from __future__ import annotations

import queue
import random
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.engine.cache import program_fingerprint
from repro.engine.events import EventSink, NullSink, SpecCompiled, SpecReloaded
from repro.library.registry import build_library_program, build_spec_interface
from repro.obs import trace as _trace
from repro.obs.trace import SpanFinished, TraceContext
from repro.service.analyzer import ClientAnalyzer
from repro.service.api import AnalyzeRequest, AnalyzeResponse, run_request
from repro.service.store import SpecNotFoundError, SpecStore

DEFAULT_QUEUE_DEPTH = 16
DEFAULT_RETRY_AFTER_SECONDS = 1
#: per-worker compiled-analyzer cache bound (current spec + reload/pin history)
MAX_CACHED_ANALYZERS = 4
#: ceiling on the store-poll backoff when the store is unreadable
POLL_BACKOFF_CAP_SECONDS = 30.0
#: proportional jitter added to backed-off delays (desynchronizes daemons
#: sharing one store so they do not retry a broken filesystem in lockstep)
POLL_BACKOFF_JITTER = 0.25


def poll_backoff_delay(interval_seconds: float, failures: int, rng: random.Random) -> float:
    """The delay before the next store poll after *failures* consecutive errors.

    A healthy store (``failures == 0``) polls at exactly *interval_seconds*
    -- hot-reload promptness is unchanged.  Each consecutive failure doubles
    the delay up to :data:`POLL_BACKOFF_CAP_SECONDS` and adds up to
    :data:`POLL_BACKOFF_JITTER` proportional jitter, so an unreadable store
    (unmounted NFS, wrecked permissions) is probed gently instead of
    hot-looped at the fixed interval.
    """
    if failures <= 0:
        return interval_seconds
    cap = max(interval_seconds, POLL_BACKOFF_CAP_SECONDS)
    delay = min(interval_seconds * (2.0 ** failures), cap)
    return delay * (1.0 + POLL_BACKOFF_JITTER * rng.random())


class PoolSaturated(RuntimeError):
    """The bounded request queue is full; shed this request.

    ``retry_after_seconds`` is a hint for the HTTP ``Retry-After`` header.
    """

    def __init__(self, depth: int, retry_after_seconds: int = DEFAULT_RETRY_AFTER_SECONDS):
        super().__init__(f"request queue full ({depth} requests pending)")
        self.depth = depth
        self.retry_after_seconds = retry_after_seconds


@dataclass
class _Job:
    request: AnalyzeRequest
    future: "Future[AnalyzeResponse]" = field(default_factory=Future)
    #: the submitting thread's trace context (the HTTP request span), so the
    #: worker thread's analysis spans join the request's trace
    context: Optional[TraceContext] = None
    enqueued_at: float = field(default_factory=time.perf_counter)


_SHUTDOWN = object()

#: request-handling strategy a worker runs; replaceable in tests to simulate
#: slow or failing analyses without real inference
Handler = Callable[[AnalyzeRequest, ClientAnalyzer], AnalyzeResponse]


class WarmWorkerPool:
    """A fixed set of worker threads sharing one bounded request queue.

    Each worker owns its analyzers (compiled from the shared
    :class:`~repro.service.store.SpecStore`, cached per spec id), so no lock
    is held while analyzing.  The library program and interface are built
    once and shared read-only across workers.
    """

    def __init__(
        self,
        store: SpecStore,
        workers: int = 2,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        events: Optional[EventSink] = None,
        library_program=None,
        interface=None,
        handler: Optional[Handler] = None,
        solver: Optional[str] = None,
        analysis_cache_dir: Optional[str] = None,
    ):
        self.store = store
        self.workers = max(1, int(workers))
        self.queue_capacity = max(1, int(queue_depth))
        self.events = events if events is not None else NullSink()
        self.solver = solver
        self.analysis_cache_dir = analysis_cache_dir
        self.library_program = (
            library_program if library_program is not None else build_library_program()
        )
        # the spec-compile interface: a stored *repaired* automaton may name
        # the array-extension classes the plain inference interface omits
        self.interface = (
            interface if interface is not None else build_spec_interface(self.library_program)
        )
        self._fingerprint = program_fingerprint(self.library_program)
        self._handler: Handler = handler if handler is not None else self._analyze
        self._queue: "queue.Queue" = queue.Queue(maxsize=self.queue_capacity)
        self._threads: List[threading.Thread] = []
        self._lock = threading.Lock()
        self._generation = 0
        self._target_spec_id: Optional[str] = None
        self._startup_errors: List[BaseException] = []
        self._started = False
        self._poller: Optional[threading.Thread] = None
        self._stop_polling = threading.Event()
        self._poll_failures = 0
        self._shadow = None  # a ShadowCanary-shaped observer, or None

    # ----------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Resolve the latest spec and spin up the workers.

        Blocks until every worker has compiled its analyzer -- after
        ``start()`` returns, the first request is served warm.  Raises
        :class:`~repro.service.store.SpecNotFoundError` when the store holds
        nothing for this library (learn first, then serve).
        """
        if self._started:
            raise RuntimeError("pool already started")
        self._startup_errors = []  # a failed earlier start() must not haunt a retry
        record = self.store.latest(fingerprint=self._fingerprint)
        if record is None:
            raise SpecNotFoundError(
                f"no stored specification for this library in {self.store.root} "
                "(run `repro learn` before `repro serve`)"
            )
        self._target_spec_id = record.spec_id
        ready: List[threading.Event] = []
        for index in range(self.workers):
            event = threading.Event()
            thread = threading.Thread(
                target=self._worker_loop,
                args=(f"worker-{index}", event),
                name=f"repro-serve-{index}",
                daemon=True,
            )
            ready.append(event)
            self._threads.append(thread)
            thread.start()
        for event in ready:
            event.wait()
        if self._startup_errors:
            self.stop()
            raise self._startup_errors[0]
        with self._lock:
            self._started = True

    def stop(self) -> None:
        """Drain queued requests, then stop every worker (and the poller)."""
        self.stop_polling()
        with self._lock:
            # flipped under the lock submit() holds, so no job can be
            # enqueued behind the shutdown sentinels and starve its future
            self._started = False
        # one sentinel per live worker, with a bounded-queue escape hatch: if
        # every worker is already dead (failed startup), blocking put()s into
        # a full queue would deadlock -- bail and let the drain below clean up
        # snapshot liveness first: a lazily-evaluated check would under-count
        # (a worker can consume an earlier sentinel and die mid-iteration)
        for _ in [thread for thread in self._threads if thread.is_alive()]:
            while True:
                try:
                    self._queue.put(_SHUTDOWN, timeout=0.1)
                    break
                except queue.Full:
                    if not any(thread.is_alive() for thread in self._threads):
                        break
        for thread in self._threads:
            thread.join()
        self._threads = []
        # fail any straggler that raced the flag rather than hanging its caller
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            if job is not _SHUTDOWN:
                job.future.set_exception(RuntimeError("pool is shutting down"))

    def __enter__(self) -> "WarmWorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ----------------------------------------------------------------- requests
    def submit(self, request: AnalyzeRequest) -> "Future[AnalyzeResponse]":
        """Enqueue one request; the future resolves when a worker finishes it.

        Raises :class:`PoolSaturated` (never blocks) when the queue is full.
        """
        job = _Job(request, context=_trace.current_context())
        with self._lock:
            if not self._started:
                raise RuntimeError("pool is not running (call start() first)")
            try:
                self._queue.put_nowait(job)
            except queue.Full:
                raise PoolSaturated(self.queue_capacity) from None
        return job.future

    @property
    def running(self) -> bool:
        """True between a successful :meth:`start` and :meth:`stop`."""
        return self._started

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a worker (a point-in-time gauge)."""
        return self._queue.qsize()

    @property
    def current_spec_id(self) -> Optional[str]:
        """The spec id new requests without an explicit pin are served under."""
        with self._lock:
            return self._target_spec_id

    @property
    def fingerprint(self) -> str:
        """The library fingerprint this pool serves specs for."""
        return self._fingerprint

    # ------------------------------------------------------------ shadow canary
    def set_shadow(self, shadow) -> None:
        """Install a shadow observer; see the module docstring.

        The observer needs three things: a ``spec_id`` attribute (the
        candidate to mirror through), ``sample() -> bool`` (per-request
        sampling decision), and ``observe(request, served, shadowed)`` /
        ``observe_error(request, error)`` callbacks.  Only one shadow runs at
        a time -- installing a new one replaces the old.
        """
        with self._lock:
            self._shadow = shadow

    def clear_shadow(self) -> None:
        """Remove the shadow observer (requests stop being mirrored)."""
        with self._lock:
            self._shadow = None

    @property
    def shadow(self):
        with self._lock:
            return self._shadow

    # --------------------------------------------------------------- hot reload
    def poll_once(self) -> bool:
        """Check the store for a newer latest spec; returns True on a swap.

        The swap only moves the *target*: each worker recompiles lazily
        before its next request (emitting another
        :class:`~repro.engine.events.SpecCompiled`), so in-flight requests
        are never dropped or migrated mid-analysis.
        """
        record = self.store.latest(fingerprint=self._fingerprint)
        if record is None:
            return False
        with self._lock:
            if record.spec_id == self._target_spec_id:
                return False
            previous = self._target_spec_id
            self._target_spec_id = record.spec_id
            self._generation += 1
        self.events.emit(SpecReloaded(previous_spec_id=previous or "", spec_id=record.spec_id))
        return True

    def start_polling(self, interval_seconds: float) -> None:
        """Poll the store for new specs every *interval_seconds* in a thread.

        A poll that raises (transient store read error) must not kill the
        poller -- and hot reload -- for good; instead consecutive failures
        back off exponentially with jitter (:func:`poll_backoff_delay`) and
        the first successful poll snaps back to the fixed interval.
        """
        if self._poller is not None or interval_seconds <= 0:
            return
        self._stop_polling.clear()
        rng = random.Random()

        def loop() -> None:
            while True:
                delay = poll_backoff_delay(interval_seconds, self._poll_failures, rng)
                if self._stop_polling.wait(delay):
                    return
                try:
                    self.poll_once()
                    self._poll_failures = 0
                except Exception:  # noqa: BLE001 - a transient store read error
                    self._poll_failures += 1

        self._poller = threading.Thread(target=loop, name="repro-serve-poller", daemon=True)
        self._poller.start()

    @property
    def poll_failures(self) -> int:
        """Consecutive failed store polls (0 while the store is healthy)."""
        return self._poll_failures

    def stop_polling(self) -> None:
        if self._poller is None:
            return
        self._stop_polling.set()
        self._poller.join()
        self._poller = None

    # ------------------------------------------------------------------ workers
    def _target(self) -> Tuple[int, Optional[str]]:
        with self._lock:
            return self._generation, self._target_spec_id

    def _compile(self, worker: str, spec_id: str) -> ClientAnalyzer:
        started = time.perf_counter()
        analyzer = ClientAnalyzer.from_store(
            self.store,
            spec_id=spec_id,
            library_program=self.library_program,
            interface=self.interface,
            solver=self.solver,
            analysis_cache_dir=self.analysis_cache_dir,
            # per-worker cache files: appends from worker threads never interleave
            analysis_cache_worker=worker,
        )
        self.events.emit(
            SpecCompiled(
                worker=worker,
                spec_id=analyzer.spec_id,
                elapsed_seconds=time.perf_counter() - started,
            )
        )
        return analyzer

    def _analyze(self, request: AnalyzeRequest, analyzer: ClientAnalyzer) -> AnalyzeResponse:
        return run_request(request, analyzer, events=self.events)

    def _worker_loop(self, name: str, ready: threading.Event) -> None:
        analyzers: Dict[str, ClientAnalyzer] = {}
        try:
            generation, spec_id = self._target()
            current = self._compile(name, spec_id)
            analyzers[spec_id] = current
        except BaseException as error:  # surface to start() instead of hanging it
            self._startup_errors.append(error)
            ready.set()
            return
        ready.set()
        # spans finished on this thread (analysis phases, batch scheduling)
        # feed the pool's own sink -- thread-local, so several pools in one
        # process never cross-contaminate each other's metrics or journals
        _trace.add_ambient_sink(self.events, thread_local=True)
        while True:
            job = self._queue.get()
            if job is _SHUTDOWN:
                return
            queue_seconds = time.perf_counter() - job.enqueued_at
            if job.context is not None:
                # the dequeue is the only place queue wait is known, so the
                # span is synthesized here as a child of the request span
                self.events.emit(
                    SpanFinished(
                        name="server.queue_wait",
                        trace_id=job.context.trace_id,
                        span_id=_trace.new_id(),
                        parent_id=job.context.span_id,
                        started_at=time.time() - queue_seconds,
                        elapsed_seconds=queue_seconds,
                        attrs=(("worker", name),),
                    )
                )
            # timing attributes ride the future itself (it has no __slots__),
            # so the HTTP layer can render a Server-Timing breakdown without
            # changing the submit()/result() contract
            job.future.queue_seconds = queue_seconds
            response = None
            try:
                latest_generation, latest_spec_id = self._target()
                if latest_generation != generation:
                    if latest_spec_id not in analyzers:
                        analyzers[latest_spec_id] = self._compile(name, latest_spec_id)
                    current = analyzers[latest_spec_id]
                    # advanced only after a successful compile: a failed
                    # reload fails this request but is retried on the next
                    generation = latest_generation
                analyzer = current
                pinned = job.request.spec_id
                if pinned is not None and pinned != analyzer.spec_id:
                    if pinned not in analyzers:
                        analyzers[pinned] = self._compile(name, pinned)
                    analyzer = analyzers[pinned]
                self._evict_stale(analyzers, keep=current.spec_id, also=analyzer.spec_id)
                analysis_started = time.perf_counter()
                with _trace.activate(job.context):
                    response = self._handler(job.request, analyzer)
                job.future.analysis_seconds = time.perf_counter() - analysis_started
                job.future.set_result(response)
            except BaseException as error:
                job.future.set_exception(error)
            if response is not None:
                self._run_shadow(name, analyzers, current, job, response)

    def _run_shadow(self, name, analyzers, current, job, response) -> None:
        """Mirror a served request through the shadow candidate, if sampled.

        Runs strictly *after* ``job.future`` resolved: the client already has
        the incumbent's answer, so nothing here -- a compile failure, an
        analysis crash, a mismatch -- can affect the served response.
        Requests pinned to an explicit spec id are never mirrored (they are
        not incumbent traffic, so a diff would compare the wrong baseline).
        """
        shadow = self.shadow
        if shadow is None or job.request.spec_id is not None:
            return
        try:
            if not shadow.sample():
                return
            candidate_id = shadow.spec_id
            if candidate_id not in analyzers:
                analyzers[candidate_id] = self._compile(name, candidate_id)
            self._evict_stale(analyzers, keep=current.spec_id, also=candidate_id)
            with _trace.activate(job.context):
                shadowed = self._handler(job.request, analyzers[candidate_id])
            shadow.observe(job.request, response, shadowed)
        except Exception as error:  # noqa: BLE001 - shadow runs are best-effort
            try:
                shadow.observe_error(job.request, error)
            except Exception:
                pass

    def _evict_stale(self, analyzers: Dict[str, ClientAnalyzer], keep: str, also: str) -> None:
        """Bound a worker's analyzer cache (hot reloads / pinned ids add up).

        Keeps the analyzer serving unpinned requests, the one just used, and
        the shadow candidate (if any), and drops the oldest others past
        :data:`MAX_CACHED_ANALYZERS` -- a long-lived daemon's memory must not
        grow with the number of deploys or with clients pinning historical
        spec ids.
        """
        shadow = self.shadow
        protected = {keep, also}
        if shadow is not None:
            protected.add(shadow.spec_id)
        while len(analyzers) > MAX_CACHED_ANALYZERS:
            for spec_id in analyzers:
                if spec_id not in protected:
                    del analyzers[spec_id]
                    break
            else:
                return


__all__ = [
    "DEFAULT_QUEUE_DEPTH",
    "Handler",
    "MAX_CACHED_ANALYZERS",
    "POLL_BACKOFF_CAP_SECONDS",
    "POLL_BACKOFF_JITTER",
    "PoolSaturated",
    "WarmWorkerPool",
    "poll_backoff_delay",
]
