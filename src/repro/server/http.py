"""The HTTP front end of the analysis daemon.

A deliberately small, stdlib-only surface (``http.server.ThreadingHTTPServer``
-- one handler thread per connection, no third-party dependencies):

========  ===========  ====================================================
method    path         body
========  ===========  ====================================================
``POST``  /analyze     :class:`~repro.service.api.AnalyzeRequest` JSON in,
                       :class:`~repro.service.api.AnalyzeResponse` JSON out
``GET``   /healthz     liveness + the spec id currently being served
``GET``   /specs       the store listing (one record per stored version)
``GET``   /metrics     :meth:`~repro.server.metrics.ServerMetrics.snapshot`
                       as JSON; ``?format=prometheus`` renders the registry
                       as Prometheus text exposition instead
========  ===========  ====================================================

Every ``/analyze`` response carries an ``X-Repro-Trace-Id`` header (the root
span of the request's trace -- client-supplied via the same request header,
or freshly minted) and, on success, a ``Server-Timing`` header breaking the
request into queue wait and analysis phases.

Status mapping for ``/analyze``: ``200`` on success, ``400`` for malformed
JSON / an unsupported ``format`` version / unknown app names, ``404`` for a
spec id the store does not hold, ``503`` + ``Retry-After`` when the bounded
request queue is full (backpressure, see
:class:`~repro.server.pool.PoolSaturated`), ``500`` for unexpected analysis
failures.  Every ``/analyze`` outcome is folded into the shared metrics.

:class:`AnalysisServer` ties the pieces together and is what both ``repro
serve`` and the in-process tests drive::

    >>> server = AnalysisServer(store, port=0, workers=4)   # port 0: ephemeral
    >>> server.start()
    >>> server.url
    'http://127.0.0.1:49502'
    >>> server.close()
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.engine.events import EventSink, FanOutSink
from repro.obs import trace as _trace
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE
from repro.server.metrics import MetricsSink, ServerMetrics
from repro.server.pool import DEFAULT_QUEUE_DEPTH, PoolSaturated, WarmWorkerPool
from repro.service.api import AnalyzeRequest, UnknownAppsError
from repro.service.store import (
    STATE_CANDIDATE,
    SpecNotFoundError,
    SpecStore,
    SpecStoreError,
)

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8080
DEFAULT_POLL_INTERVAL_SECONDS = 2.0


def spec_status(pool, store: SpecStore) -> dict:
    """Lifecycle view of the store as seen from what *pool* serves.

    The active spec (id, version, lineage depth) and any candidates awaiting
    a canary verdict for the same library -- shared by the threaded handler
    and the asyncio front door so ``/healthz``, ``/specs``, and ``/metrics``
    report identically whichever serving tier answers.
    """
    current = pool.current_spec_id
    states = store.states()
    candidates = [
        record.spec_id
        for record in store.list(fingerprint=pool.fingerprint)
        if states.get(record.spec_id) == STATE_CANDIDATE
    ]
    active_version: Optional[int] = None
    lineage_depth: Optional[int] = None
    if current is not None:
        try:
            active_version = store.record(current).version
            lineage_depth = store.lineage_depth(current)
        except SpecStoreError:
            pass  # the served spec predates this index (or store moved)
    return {
        "active_spec_id": current,
        "active_version": active_version,
        "lineage_depth": lineage_depth,
        "candidate_spec_ids": candidates,
    }


class _RequestHandler(BaseHTTPRequestHandler):
    """Routes the four endpoints; all state lives on the server object."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # ----------------------------------------------------------------- plumbing
    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib name
        pass  # request logging is the metrics endpoint's job, not stderr's

    def _send_json(
        self,
        status: int,
        payload,
        extra_headers: Optional[dict] = None,
        compact: bool = False,
    ) -> None:
        # machine-consumed hot-path responses are compact; GETs stay readable
        rendered = (
            json.dumps(payload, separators=(",", ":"))
            if compact
            else json.dumps(payload, indent=1)
        )
        body = rendered.encode("utf-8") + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, body: str, content_type: str) -> None:
        encoded = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    @property
    def _pool(self) -> WarmWorkerPool:
        return self.server.pool  # type: ignore[attr-defined]

    @property
    def _metrics(self) -> ServerMetrics:
        return self.server.metrics  # type: ignore[attr-defined]

    @property
    def _store(self) -> SpecStore:
        return self.server.store  # type: ignore[attr-defined]

    def _spec_status(self) -> dict:
        return spec_status(self._pool, self._store)

    # ------------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        parsed = urlsplit(self.path)
        if parsed.path == "/metrics":
            spec_status = self._spec_status()
            formats = parse_qs(parsed.query).get("format", ["json"])
            if formats[-1] == "prometheus":
                self._send_text(
                    200,
                    self._metrics.to_prometheus(
                        queue_depth=self._pool.queue_depth,
                        queue_capacity=self._pool.queue_capacity,
                        workers=self._pool.workers,
                        active_version=spec_status["active_version"],
                    ),
                    PROMETHEUS_CONTENT_TYPE,
                )
                return
            self._send_json(
                200,
                self._metrics.snapshot(
                    queue_depth=self._pool.queue_depth,
                    queue_capacity=self._pool.queue_capacity,
                    workers=self._pool.workers,
                    active_version=spec_status["active_version"],
                ),
            )
            return
        if self.path == "/healthz":
            payload = {
                "status": "ok",
                "spec_id": self._pool.current_spec_id,
                "workers": self._pool.workers,
                "uptime_seconds": time.time() - self._metrics.started_at,
            }
            payload.update(self._spec_status())
            self._send_json(200, payload)
        elif self.path == "/specs":
            states = self._store.states()
            specs = []
            for record in self._store.records():
                entry = record.to_dict()
                entry["state"] = states.get(record.spec_id)
                specs.append(entry)
            payload = {
                "current": self._pool.current_spec_id,
                "specs": specs,
            }
            payload.update(self._spec_status())
            self._send_json(200, payload)
        else:
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})

    def _read_body(self) -> Optional[bytes]:
        """Drain the request body; ``None`` (and no keep-alive) if unreadable.

        The body must be consumed before *any* response on an HTTP/1.1
        connection -- leftover bytes would be parsed as the start of the
        client's next request.  An unparseable ``Content-Length`` makes the
        remaining stream unframeable, so the connection is closed instead.
        """
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            self.close_connection = True
            return None
        return self.rfile.read(length) if length > 0 else b""

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        body = self._read_body()
        if urlsplit(self.path).path != "/analyze":
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})
            return
        started = time.perf_counter()
        # the request root span: the handler thread is per-connection, so the
        # pool's sink is attached explicitly; a client-supplied trace id
        # (X-Repro-Trace-Id) roots the trace under the caller's id
        client_trace = (self.headers.get("X-Repro-Trace-Id") or "").strip() or None
        with _trace.span(
            "server.request", sink=self._pool.events, trace_id=client_trace
        ) as span:
            status, payload, headers = self._analyze(body)
            span.set("status", status)
            trace_id = span.trace_id
        self._metrics.record_request(status, time.perf_counter() - started)
        headers = dict(headers or {})
        headers["X-Repro-Trace-Id"] = trace_id
        self._send_json(status, payload, extra_headers=headers, compact=status == 200)

    def _analyze(self, body: Optional[bytes]) -> Tuple[int, dict, Optional[dict]]:
        """Run one /analyze request; returns (status, body, extra headers)."""
        if body is None:
            return 400, {"error": "invalid Content-Length header"}, None
        try:
            data = json.loads(body.decode("utf-8")) if body else {}
        except (ValueError, UnicodeDecodeError) as error:
            return 400, {"error": f"invalid JSON body: {error}"}, None
        try:
            request = AnalyzeRequest.from_dict(data)
        except (ValueError, TypeError, AttributeError) as error:
            return 400, {"error": f"bad request: {error}"}, None
        try:
            future = self._pool.submit(request)
        except PoolSaturated as error:
            return (
                503,
                {"error": str(error), "retry_after_seconds": error.retry_after_seconds},
                {"Retry-After": str(error.retry_after_seconds)},
            )
        except RuntimeError as error:  # pool stopping: the shutdown race ends 503, not reset
            return 503, {"error": f"server unavailable: {error}"}, {"Retry-After": "1"}
        try:
            response = future.result()
        except SpecNotFoundError as error:
            return 404, {"error": f"unknown spec: {error}"}, None
        except UnknownAppsError as error:
            return 400, {"error": f"bad request: {error}"}, None
        except Exception as error:  # noqa: BLE001 - the wire needs *some* answer
            return 500, {"error": f"analysis failed: {error}"}, None
        return 200, response.to_dict(), {"Server-Timing": self._server_timing(future, response)}

    @staticmethod
    def _server_timing(future, response) -> str:
        """The per-phase breakdown header: queue wait + analysis phase sums."""
        parts = []
        queue_seconds = getattr(future, "queue_seconds", None)
        if queue_seconds is not None:
            parts.append(f"queue;dur={queue_seconds * 1000.0:.3f}")
        reports = response.result.reports
        parts.append(
            f"andersen;dur={sum(r.timing.andersen_seconds for r in reports) * 1000.0:.3f}"
        )
        parts.append(
            f"taint;dur={sum(r.timing.taint_seconds for r in reports) * 1000.0:.3f}"
        )
        if any(r.timing.solve_outcome is not None for r in reports):
            solve_seconds = sum(r.timing.solve_seconds or 0.0 for r in reports)
            parts.append(f"solve;dur={solve_seconds * 1000.0:.3f}")
        analysis_seconds = getattr(future, "analysis_seconds", None)
        if analysis_seconds is not None:
            parts.append(f"analysis;dur={analysis_seconds * 1000.0:.3f}")
        return ", ".join(parts)


class AnalysisHTTPServer(ThreadingHTTPServer):
    """A ``ThreadingHTTPServer`` carrying the daemon's shared state."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, pool: WarmWorkerPool, metrics: ServerMetrics, store: SpecStore):
        super().__init__(address, _RequestHandler)
        self.pool = pool
        self.metrics = metrics
        self.store = store


class AnalysisServer:
    """The resident analysis daemon: pool + metrics + HTTP, one lifecycle.

    ``start()`` compiles every worker's analyzer (so the first request is
    warm), begins store polling for hot reload, and serves HTTP on a
    background thread; ``close()`` (or the context manager) tears all of it
    down.  ``port=0`` binds an ephemeral port -- read it back from
    :attr:`address` / :attr:`url`, which is how tests and
    ``examples/serve_http.py`` run hermetically.
    """

    def __init__(
        self,
        store: SpecStore,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        workers: int = 2,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        events: Optional[EventSink] = None,
        poll_interval: float = DEFAULT_POLL_INTERVAL_SECONDS,
        metrics: Optional[ServerMetrics] = None,
        library_program=None,
        interface=None,
        handler=None,
        solver: Optional[str] = None,
        analysis_cache_dir: Optional[str] = None,
    ):
        self.store = store
        self.host = host
        self.port = port
        self.poll_interval = poll_interval
        self.metrics = metrics if metrics is not None else ServerMetrics()
        sinks: list = [MetricsSink(self.metrics)]
        if events is not None:
            sinks.append(events)
        self.events = FanOutSink(sinks)
        self.pool = WarmWorkerPool(
            store,
            workers=workers,
            queue_depth=queue_depth,
            events=self.events,
            library_program=library_program,
            interface=interface,
            handler=handler,
            solver=solver,
            analysis_cache_dir=analysis_cache_dir,
        )
        self._httpd: Optional[AnalysisHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # ----------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Warm the workers, bind the socket, serve on a background thread."""
        if self._httpd is not None:
            raise RuntimeError("server already started")
        self.pool.start()
        self.pool.start_polling(self.poll_interval)
        self._httpd = AnalysisHTTPServer(
            (self.host, self.port), self.pool, self.metrics, self.store
        )
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve-http", daemon=True
        )
        self._thread.start()

    def serve_forever(self) -> None:
        """Block the calling thread until :meth:`close` (or interrupt)."""
        if self._thread is None:
            raise RuntimeError("server is not running (call start() first)")
        self._thread.join()

    def close(self) -> None:
        """Stop accepting connections, drain queued requests, stop workers."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
            self._thread = None
        if self.pool.running:  # tolerate close() after a failed start()
            self.pool.stop()

    def __enter__(self) -> "AnalysisServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ address
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` -- the real port even when 0 was asked."""
        if self._httpd is None:
            raise RuntimeError("server is not running")
        return self._httpd.server_address[0], self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"


__all__ = [
    "AnalysisHTTPServer",
    "AnalysisServer",
    "DEFAULT_HOST",
    "DEFAULT_POLL_INTERVAL_SECONDS",
    "DEFAULT_PORT",
    "spec_status",
]
