"""The long-running analysis daemon: warm workers behind an HTTP front door.

PR 2's service layer made "learn once, analyze many" scriptable, but every
invocation was still a one-shot process that recompiled the stored
specification on the way in.  This subsystem makes the serving side
*resident*, which is what the paper's economics call for: specifications are
learned once precisely so clients can query them cheaply and often
(conf_pldi_Bastani0AL18).

* :mod:`repro.server.pool` -- :class:`WarmWorkerPool`: worker threads that
  compile the stored spec to a :class:`~repro.service.analyzer.ClientAnalyzer`
  **once at startup**, a bounded request queue with backpressure
  (:class:`PoolSaturated`), and hot reload of newly stored specs without
  dropping in-flight requests.
* :mod:`repro.server.procpool` -- :class:`ProcessWorkerPool`: the same
  contract over pre-forked worker **processes** (compile once per process,
  spec-id routing, telemetry and shadow mirroring forwarded across the fork
  boundary), so analysis throughput scales with cores instead of one GIL.
* :mod:`repro.server.http` -- :class:`AnalysisServer`: a stdlib
  ``ThreadingHTTPServer`` exposing ``POST /analyze`` (the existing
  :class:`~repro.service.api.AnalyzeRequest` / ``FlowReport`` JSON bodies),
  ``GET /healthz``, ``GET /specs``, and ``GET /metrics``.
* :mod:`repro.server.front` -- :class:`ShardedAnalysisServer`: the
  multi-process tier's asyncio front door -- same endpoints and headers,
  plus admission control and single-flight request coalescing keyed on
  :func:`~repro.service.api.canonical_request_key`.
* :mod:`repro.server.metrics` -- :class:`ServerMetrics` + :class:`MetricsSink`:
  request counts, latency percentiles, queue depth, and per-worker spec
  compilation counters fed from :mod:`repro.engine.events`.
* :mod:`repro.server.bench` -- :func:`run_load` / :func:`run_open_load`:
  seeded closed- and open-loop load generators (latency anchored at first
  attempt / intended send -- no coordinated omission) whose responses are
  verified bit-identical to in-process
  :func:`~repro.service.api.handle_request`.

The CLI surface is ``repro serve`` (``--processes N`` picks the sharded
tier) and ``repro bench-serve`` (load-test one, ``--mode open`` for the
scheduled-arrival harness); ``examples/serve_http.py`` walks the whole path
in-process.
"""

from repro.server.bench import (
    LoadResult,
    canonical_reports,
    fetch_json,
    parse_retry_after,
    post_analyze,
    run_load,
    run_open_load,
    verify_against_inprocess,
)
from repro.server.front import ShardedAnalysisServer
from repro.server.http import (
    AnalysisHTTPServer,
    AnalysisServer,
    DEFAULT_HOST,
    DEFAULT_POLL_INTERVAL_SECONDS,
    DEFAULT_PORT,
    spec_status,
)
from repro.server.metrics import MetricsSink, ServerMetrics, percentile
from repro.server.pool import (
    DEFAULT_QUEUE_DEPTH,
    PoolSaturated,
    WarmWorkerPool,
)
from repro.server.procpool import ProcessWorkerPool

__all__ = [
    "AnalysisHTTPServer",
    "AnalysisServer",
    "DEFAULT_HOST",
    "DEFAULT_POLL_INTERVAL_SECONDS",
    "DEFAULT_PORT",
    "DEFAULT_QUEUE_DEPTH",
    "LoadResult",
    "MetricsSink",
    "PoolSaturated",
    "ProcessWorkerPool",
    "ServerMetrics",
    "ShardedAnalysisServer",
    "WarmWorkerPool",
    "canonical_reports",
    "fetch_json",
    "parse_retry_after",
    "percentile",
    "post_analyze",
    "run_load",
    "run_open_load",
    "spec_status",
    "verify_against_inprocess",
]
