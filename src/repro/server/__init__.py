"""The long-running analysis daemon: warm workers behind an HTTP front door.

PR 2's service layer made "learn once, analyze many" scriptable, but every
invocation was still a one-shot process that recompiled the stored
specification on the way in.  This subsystem makes the serving side
*resident*, which is what the paper's economics call for: specifications are
learned once precisely so clients can query them cheaply and often
(conf_pldi_Bastani0AL18).

* :mod:`repro.server.pool` -- :class:`WarmWorkerPool`: worker threads that
  compile the stored spec to a :class:`~repro.service.analyzer.ClientAnalyzer`
  **once at startup**, a bounded request queue with backpressure
  (:class:`PoolSaturated`), and hot reload of newly stored specs without
  dropping in-flight requests.
* :mod:`repro.server.http` -- :class:`AnalysisServer`: a stdlib
  ``ThreadingHTTPServer`` exposing ``POST /analyze`` (the existing
  :class:`~repro.service.api.AnalyzeRequest` / ``FlowReport`` JSON bodies),
  ``GET /healthz``, ``GET /specs``, and ``GET /metrics``.
* :mod:`repro.server.metrics` -- :class:`ServerMetrics` + :class:`MetricsSink`:
  request counts, latency percentiles, queue depth, and per-worker spec
  compilation counters fed from :mod:`repro.engine.events`.
* :mod:`repro.server.bench` -- :func:`run_load`: a seeded concurrent load
  generator whose responses are verified bit-identical to in-process
  :func:`~repro.service.api.handle_request`.

The CLI surface is ``repro serve`` (run the daemon) and ``repro bench-serve``
(load-test one); ``examples/serve_http.py`` walks the whole path in-process.
"""

from repro.server.bench import (
    LoadResult,
    canonical_reports,
    fetch_json,
    post_analyze,
    run_load,
    verify_against_inprocess,
)
from repro.server.http import (
    AnalysisHTTPServer,
    AnalysisServer,
    DEFAULT_HOST,
    DEFAULT_POLL_INTERVAL_SECONDS,
    DEFAULT_PORT,
)
from repro.server.metrics import MetricsSink, ServerMetrics, percentile
from repro.server.pool import (
    DEFAULT_QUEUE_DEPTH,
    PoolSaturated,
    WarmWorkerPool,
)

__all__ = [
    "AnalysisHTTPServer",
    "AnalysisServer",
    "DEFAULT_HOST",
    "DEFAULT_POLL_INTERVAL_SECONDS",
    "DEFAULT_PORT",
    "DEFAULT_QUEUE_DEPTH",
    "LoadResult",
    "MetricsSink",
    "PoolSaturated",
    "ServerMetrics",
    "WarmWorkerPool",
    "canonical_reports",
    "fetch_json",
    "percentile",
    "post_analyze",
    "run_load",
    "verify_against_inprocess",
]
