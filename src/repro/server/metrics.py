"""Thread-safe request metrics for the analysis daemon.

One :class:`ServerMetrics` instance is shared by every handler thread and
warm worker of an :class:`~repro.server.http.AnalysisServer`; the ``GET
/metrics`` endpoint renders :meth:`ServerMetrics.snapshot` as JSON.  Two
feeds fill it:

* the HTTP layer records each request's status class and wall-clock latency
  (:meth:`ServerMetrics.record_request`), and
* :class:`MetricsSink` -- an :class:`~repro.engine.events.EventSink` --
  counts the engine telemetry the workers emit while analyzing
  (:class:`~repro.engine.events.AnalysisFinished` per program,
  :class:`~repro.engine.events.SpecCompiled` per worker compilation,
  :class:`~repro.engine.events.SpecReloaded` per hot reload), so the
  per-worker compile counters that prove "specs are compiled once per
  worker, not once per request" come from the same event stream every other
  engine consumer uses.

Example::

    >>> metrics = ServerMetrics()
    >>> metrics.record_request(200, 0.012)
    >>> metrics.snapshot()["requests"]["total"]
    1
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.engine.events import (
    AnalysisFinished,
    BatchFinished,
    EngineEvent,
    EventSink,
    SpecCompiled,
    SpecReloaded,
)

#: latencies kept for percentile estimation (a sliding window, so a
#: long-lived daemon reports recent behavior, not its whole history)
DEFAULT_LATENCY_WINDOW = 1024

_PERCENTILES = (50.0, 90.0, 99.0)


def percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile (``ceil(P/100 * N)``) of a sorted, non-empty list."""
    if not sorted_values:
        raise ValueError("percentile of an empty list")
    rank = math.ceil(fraction / 100.0 * len(sorted_values)) - 1
    return sorted_values[max(0, min(len(sorted_values) - 1, rank))]


class ServerMetrics:
    """Counters and latency percentiles for one daemon instance.

    Every mutator takes the instance lock, so handler threads, worker
    threads, and the store poller can all write concurrently;
    :meth:`snapshot` returns a plain, JSON-serializable dict computed under
    the same lock.
    """

    def __init__(self, latency_window: int = DEFAULT_LATENCY_WINDOW):
        self._lock = threading.Lock()
        self.started_at = time.time()
        self.requests_total = 0
        self.responses_by_status: Dict[int, int] = {}
        self.rejected_total = 0  # 503s: queue full, request shed
        self.analyses_total = 0
        self.flows_total = 0
        self.batches_total = 0
        self.spec_compilations_total = 0
        self.spec_compilations_by_worker: Dict[str, int] = {}
        self.hot_reloads_total = 0
        self._latencies: Deque[float] = deque(maxlen=latency_window)

    # --------------------------------------------------------------- recording
    def record_request(self, status: int, seconds: float) -> None:
        """Count one finished HTTP request; latency feeds the window on 200s.

        Only successful analyses contribute to the percentile window --
        under backpressure, near-instant 503 rejections would otherwise
        drown out the served-request latencies an operator actually needs.
        """
        with self._lock:
            self.requests_total += 1
            self.responses_by_status[status] = self.responses_by_status.get(status, 0) + 1
            if status == 503:
                self.rejected_total += 1
            if status == 200:
                self._latencies.append(seconds)

    def record_event(self, event: EngineEvent) -> None:
        """Fold one engine event into the counters (see :class:`MetricsSink`)."""
        with self._lock:
            if isinstance(event, AnalysisFinished):
                self.analyses_total += 1
                self.flows_total += event.flows
            elif isinstance(event, BatchFinished):
                self.batches_total += 1
            elif isinstance(event, SpecCompiled):
                self.spec_compilations_total += 1
                self.spec_compilations_by_worker[event.worker] = (
                    self.spec_compilations_by_worker.get(event.worker, 0) + 1
                )
            elif isinstance(event, SpecReloaded):
                self.hot_reloads_total += 1

    # ---------------------------------------------------------------- snapshot
    def snapshot(
        self,
        queue_depth: Optional[int] = None,
        queue_capacity: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> Dict:
        """A JSON-serializable view of every counter, plus live gauges.

        The queue/worker gauges describe the pool at scrape time and are
        passed in by the HTTP layer (the metrics object itself does not hold
        a pool reference).
        """
        with self._lock:
            ordered = sorted(self._latencies)
            latency = {
                "count": len(ordered),
                "percentiles_seconds": {
                    f"p{fraction:g}": percentile(ordered, fraction) for fraction in _PERCENTILES
                }
                if ordered
                else {},
                "max_seconds": ordered[-1] if ordered else None,
            }
            snapshot = {
                "uptime_seconds": time.time() - self.started_at,
                "requests": {
                    "total": self.requests_total,
                    "by_status": {str(k): v for k, v in sorted(self.responses_by_status.items())},
                    "rejected": self.rejected_total,
                },
                "latency": latency,
                "analyses": {
                    "programs": self.analyses_total,
                    "flows": self.flows_total,
                    "batches": self.batches_total,
                },
                "specs": {
                    "compilations": self.spec_compilations_total,
                    "compilations_by_worker": dict(
                        sorted(self.spec_compilations_by_worker.items())
                    ),
                    "hot_reloads": self.hot_reloads_total,
                },
            }
        queue: Dict = {}
        if queue_depth is not None:
            queue["depth"] = queue_depth
        if queue_capacity is not None:
            queue["capacity"] = queue_capacity
        if queue:
            snapshot["queue"] = queue
        if workers is not None:
            snapshot["workers"] = workers
        return snapshot


class MetricsSink(EventSink):
    """Routes engine events into a :class:`ServerMetrics` instance.

    Compose it with a :class:`~repro.engine.events.FanOutSink` to keep a
    progress stream *and* metrics fed from one event flow::

        >>> from repro.engine.events import FanOutSink, StreamSink
        >>> import sys
        >>> metrics = ServerMetrics()
        >>> sink = FanOutSink([MetricsSink(metrics), StreamSink(sys.stderr)])
    """

    def __init__(self, metrics: ServerMetrics):
        self.metrics = metrics

    def emit(self, event: EngineEvent) -> None:
        self.metrics.record_event(event)


__all__ = [
    "DEFAULT_LATENCY_WINDOW",
    "MetricsSink",
    "ServerMetrics",
    "percentile",
]
