"""Thread-safe request metrics for the analysis daemon.

One :class:`ServerMetrics` instance is shared by every handler thread and
warm worker of an :class:`~repro.server.http.AnalysisServer`; the ``GET
/metrics`` endpoint renders :meth:`ServerMetrics.snapshot` as JSON (the
default) or :meth:`ServerMetrics.to_prometheus` as the Prometheus text
exposition (``?format=prometheus``).  Two feeds fill it:

* the HTTP layer records each request's status class and wall-clock latency
  (:meth:`ServerMetrics.record_request`), and
* :class:`MetricsSink` -- an :class:`~repro.engine.events.EventSink` --
  counts the engine telemetry the workers emit while analyzing
  (:class:`~repro.engine.events.AnalysisFinished` per program,
  :class:`~repro.engine.events.SpecCompiled` per worker compilation,
  :class:`~repro.engine.events.SpecReloaded` per hot reload), so the
  per-worker compile counters that prove "specs are compiled once per
  worker, not once per request" come from the same event stream every other
  engine consumer uses.  :class:`~repro.obs.trace.SpanFinished` events ride
  the same stream and land in the per-phase latency histogram
  (``repro_phase_seconds{phase=...}``).

The counters live in a :class:`repro.obs.metrics.MetricsRegistry`; the JSON
snapshot is *derived* from the registry, so the two expositions can never
drift apart.  Only the latency percentile window is registry-external: a
fixed-bucket histogram cannot produce a sliding-window p50/p90/p99, and the
window semantics ("recent behavior, not whole history") predate this layer.

Example::

    >>> metrics = ServerMetrics()
    >>> metrics.record_request(200, 0.012)
    >>> metrics.snapshot()["requests"]["total"]
    1
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, Optional

from repro.engine.events import (
    AnalysisFinished,
    BatchFinished,
    CanaryFinished,
    EngineEvent,
    EventSink,
    ShadowCompared,
    SpecCompiled,
    SpecPromoted,
    SpecReloaded,
    SpecRolledBack,
    dropped_event_count,
)
from repro.obs.metrics import MetricsRegistry, percentile
from repro.obs.trace import SpanFinished

#: latencies kept for percentile estimation (a sliding window, so a
#: long-lived daemon reports recent behavior, not its whole history)
DEFAULT_LATENCY_WINDOW = 1024

_PERCENTILES = (50.0, 90.0, 99.0)


class ServerMetrics:
    """Counters and latency percentiles for one daemon instance.

    Every mutator takes the registry lock (or the window lock), so handler
    threads, worker threads, and the store poller can all write
    concurrently; :meth:`snapshot` returns a plain, JSON-serializable dict.
    """

    def __init__(self, latency_window: int = DEFAULT_LATENCY_WINDOW):
        self.started_at = time.time()
        self.registry = MetricsRegistry()
        reg = self.registry
        self._requests = reg.counter(
            "repro_requests_total", "HTTP requests handled, by status code", ("status",)
        )
        self._rejected = reg.counter(
            "repro_requests_rejected_total", "Requests shed with 503 (queue full)"
        )
        self._admission_rejected = reg.counter(
            "repro_admission_rejected_total",
            "Requests shed by front-door admission control before reaching the pool",
        )
        self._coalesced = reg.counter(
            "repro_requests_coalesced_total",
            "Requests answered with an identical in-flight request's response",
        )
        self._latency = reg.histogram(
            "repro_request_latency_seconds", "Wall-clock latency of 200 responses"
        )
        self._error_latency = reg.histogram(
            "repro_request_error_latency_seconds",
            "Wall-clock latency of non-200 responses (backpressure and 4xx paths)",
        )
        self._analyses = reg.counter(
            "repro_analyses_total", "Client programs analyzed"
        )
        self._flows = reg.counter(
            "repro_flows_total", "Information flows reported across all analyses"
        )
        self._batches = reg.counter("repro_batches_total", "Batch analyses completed")
        self._compilations = reg.counter(
            "repro_spec_compilations_total",
            "Spec-to-analyzer compilations, by warm worker",
            ("worker",),
        )
        self._reloads = reg.counter(
            "repro_spec_hot_reloads_total", "Store-poller hot reloads applied"
        )
        self._canaries = reg.counter(
            "repro_canary_total", "Candidate canary evaluations, by verdict", ("result",)
        )
        self._shadow = reg.counter(
            "repro_shadow_requests_total",
            "Requests mirrored through a shadow candidate, by comparison result",
            ("result",),
        )
        self._promotions = reg.counter(
            "repro_spec_promotions_total", "Candidates promoted to servable"
        )
        self._rollbacks = reg.counter(
            "repro_spec_rollbacks_total", "Spec versions rolled back"
        )
        self._active_version = reg.gauge(
            "repro_spec_active_version", "Version number of the actively served spec"
        )
        self._phases = reg.histogram(
            "repro_phase_seconds", "Per-phase (span) wall-clock time", ("phase",)
        )
        self._solves = reg.counter(
            "repro_solve_total",
            "Compiled-solver analyses, by outcome (hit, incremental, cold)",
            ("outcome",),
        )
        self._queue_depth = reg.gauge("repro_queue_depth", "Queued requests at scrape time")
        self._queue_capacity = reg.gauge(
            "repro_queue_capacity", "Bounded queue capacity"
        )
        self._workers = reg.gauge("repro_workers", "Warm analysis workers")
        self._uptime = reg.gauge("repro_uptime_seconds", "Daemon uptime at scrape time")
        self._dropped = reg.counter(
            "repro_obs_dropped_events_total",
            "Telemetry events dropped by misbehaving or broken sinks",
        )
        self._window_lock = threading.Lock()
        self._latencies: Deque[float] = deque(maxlen=latency_window)

    # --------------------------------------------------------------- recording
    def record_request(self, status: int, seconds: float) -> None:
        """Count one finished HTTP request; latency feeds the window on 200s.

        Only successful analyses contribute to the percentile window and the
        main latency histogram -- under backpressure, near-instant 503
        rejections would otherwise drown out the served-request latencies an
        operator actually needs.  Non-200 latencies are not discarded,
        though: they land in a separate error-latency histogram, which is
        what makes 503 shed-rates and slow 4xx paths visible.
        """
        self._requests.inc(status=status)
        if status == 503:
            self._rejected.inc()
        if status == 200:
            self._latency.observe(seconds)
            with self._window_lock:
                self._latencies.append(seconds)
        else:
            self._error_latency.observe(seconds)

    def record_admission_rejected(self) -> None:
        """Count one request shed by the front door's in-flight cap.

        Distinct from :meth:`record_request`'s 503 accounting (which still
        runs for these) so operators can tell admission-control sheds from
        pool-queue sheds -- the two bounds are tuned independently.
        """
        self._admission_rejected.inc()

    def record_coalesced(self) -> None:
        """Count one follower served from an identical in-flight request."""
        self._coalesced.inc()

    def record_event(self, event: EngineEvent) -> None:
        """Fold one engine event into the counters (see :class:`MetricsSink`)."""
        if isinstance(event, SpanFinished):
            self._phases.observe(event.elapsed_seconds, phase=event.name)
            if event.name == "analysis.solve":
                outcome = event.attributes().get("outcome")
                if outcome:
                    self._solves.inc(outcome=outcome)
        elif isinstance(event, AnalysisFinished):
            self._analyses.inc()
            self._flows.inc(event.flows)
        elif isinstance(event, BatchFinished):
            self._batches.inc()
        elif isinstance(event, SpecCompiled):
            self._compilations.inc(worker=event.worker)
        elif isinstance(event, SpecReloaded):
            self._reloads.inc()
        elif isinstance(event, CanaryFinished):
            self._canaries.inc(result="pass" if event.passed else "fail")
        elif isinstance(event, ShadowCompared):
            self._shadow.inc(result="mismatch" if event.mismatches else "match")
        elif isinstance(event, SpecPromoted):
            self._promotions.inc()
        elif isinstance(event, SpecRolledBack):
            self._rollbacks.inc()

    # ------------------------------------------------------- derived properties
    @property
    def requests_total(self) -> int:
        return int(sum(self._requests.series().values()))

    @property
    def rejected_total(self) -> int:
        return int(self._rejected.value())

    @property
    def admission_rejected_total(self) -> int:
        return int(self._admission_rejected.value())

    @property
    def coalesced_total(self) -> int:
        return int(self._coalesced.value())

    @property
    def analyses_total(self) -> int:
        return int(self._analyses.value())

    @property
    def flows_total(self) -> int:
        return int(self._flows.value())

    @property
    def batches_total(self) -> int:
        return int(self._batches.value())

    @property
    def spec_compilations_total(self) -> int:
        return int(sum(self._compilations.series().values()))

    @property
    def spec_compilations_by_worker(self) -> Dict[str, int]:
        return {key[0]: int(value) for key, value in self._compilations.series().items()}

    @property
    def hot_reloads_total(self) -> int:
        return int(self._reloads.value())

    @property
    def solves_by_outcome(self) -> Dict[str, int]:
        return {key[0]: int(value) for key, value in self._solves.series().items()}

    @property
    def canaries_by_result(self) -> Dict[str, int]:
        return {key[0]: int(value) for key, value in self._canaries.series().items()}

    @property
    def promotions_total(self) -> int:
        return int(self._promotions.value())

    @property
    def rollbacks_total(self) -> int:
        return int(self._rollbacks.value())

    # ---------------------------------------------------------------- snapshot
    def snapshot(
        self,
        queue_depth: Optional[int] = None,
        queue_capacity: Optional[int] = None,
        workers: Optional[int] = None,
        active_version: Optional[int] = None,
    ) -> Dict:
        """A JSON-serializable view of every counter, plus live gauges.

        The queue/worker gauges describe the pool at scrape time and are
        passed in by the HTTP layer (the metrics object itself does not hold
        a pool reference).
        """
        with self._window_lock:
            ordered = sorted(self._latencies)
        latency = {
            "count": len(ordered),
            "percentiles_seconds": {
                f"p{fraction:g}": percentile(ordered, fraction) for fraction in _PERCENTILES
            }
            if ordered
            else {},
            "max_seconds": ordered[-1] if ordered else None,
        }
        error_count = self._error_latency.count()
        snapshot = {
            "uptime_seconds": time.time() - self.started_at,
            "requests": {
                "total": self.requests_total,
                "by_status": {
                    key[0]: int(value) for key, value in self._requests.series().items()
                },
                "rejected": self.rejected_total,
                "admission_rejected": self.admission_rejected_total,
                "coalesced": self.coalesced_total,
            },
            "latency": latency,
            "error_latency": {
                "count": error_count,
                "total_seconds": self._error_latency.sum(),
            },
            "analyses": {
                "programs": self.analyses_total,
                "flows": self.flows_total,
                "batches": self.batches_total,
            },
            "specs": {
                "compilations": self.spec_compilations_total,
                "compilations_by_worker": dict(
                    sorted(self.spec_compilations_by_worker.items())
                ),
                "hot_reloads": self.hot_reloads_total,
                "active_version": active_version,
                "promotions": self.promotions_total,
                "rollbacks": self.rollbacks_total,
            },
            "canaries": dict(sorted(self.canaries_by_result.items())),
            "solver": self._solver_snapshot(),
            "dropped_events": dropped_event_count(),
        }
        queue: Dict = {}
        if queue_depth is not None:
            queue["depth"] = queue_depth
        if queue_capacity is not None:
            queue["capacity"] = queue_capacity
        if queue:
            snapshot["queue"] = queue
        if workers is not None:
            snapshot["workers"] = workers
        return snapshot

    def _solver_snapshot(self) -> Dict:
        """The compiled-engine counters: per-outcome counts plus derived rates.

        All zeros under the reference solver -- the block is always present
        so dashboards need not special-case engine selection.
        """
        by_outcome = self.solves_by_outcome
        total = sum(by_outcome.values())
        hits = by_outcome.get("hit", 0)
        incremental = by_outcome.get("incremental", 0)
        return {
            "total": total,
            "by_outcome": dict(sorted(by_outcome.items())),
            "cache_hit_rate": (hits / total) if total else None,
            "incremental_share": (incremental / total) if total else None,
        }

    # -------------------------------------------------------------- prometheus
    def to_prometheus(
        self,
        queue_depth: Optional[int] = None,
        queue_capacity: Optional[int] = None,
        workers: Optional[int] = None,
        active_version: Optional[int] = None,
    ) -> str:
        """The Prometheus text exposition of every instrument.

        Scrape-time gauges (queue, workers, uptime) are set just before
        rendering, and the process-wide dropped-event counter is mirrored
        into the registry, so one render is a complete, self-consistent
        scrape.
        """
        self._uptime.set(time.time() - self.started_at)
        if queue_depth is not None:
            self._queue_depth.set(queue_depth)
        if queue_capacity is not None:
            self._queue_capacity.set(queue_capacity)
        if workers is not None:
            self._workers.set(workers)
        if active_version is not None:
            self._active_version.set(active_version)
        self._dropped.set_total(dropped_event_count())
        return self.registry.render_prometheus()


class MetricsSink(EventSink):
    """Routes engine events into a :class:`ServerMetrics` instance.

    Compose it with a :class:`~repro.engine.events.FanOutSink` to keep a
    progress stream *and* metrics fed from one event flow::

        >>> from repro.engine.events import FanOutSink, StreamSink
        >>> import sys
        >>> metrics = ServerMetrics()
        >>> sink = FanOutSink([MetricsSink(metrics), StreamSink(sys.stderr)])
    """

    def __init__(self, metrics: ServerMetrics):
        self.metrics = metrics

    def emit(self, event: EngineEvent) -> None:
        self.metrics.record_event(event)


__all__ = [
    "DEFAULT_LATENCY_WINDOW",
    "MetricsSink",
    "ServerMetrics",
    "percentile",
]
