"""Pre-forked analysis worker processes behind per-worker job queues.

The :class:`~repro.server.pool.WarmWorkerPool` amortizes spec compilation
across requests but keeps every analysis on a thread of one process -- the
GIL serializes the actual constraint solving, so ``/analyze`` throughput
caps at roughly one core however many workers the pool has.
:class:`ProcessWorkerPool` keeps the pool's entire contract (bounded
admission -> :class:`~repro.server.pool.PoolSaturated`, lazy hot reload via
store-index polling, shadow canaries, per-worker ``SpecCompiled`` telemetry,
bit-identical answers through :func:`repro.service.api.run_request`) but
runs each worker as a **process**: compilation happens once per process at
startup, requests are dispatched over a per-worker job queue, and results
come back over one shared result queue.

Design points worth knowing before reading the code:

* **Spec-id routing.**  Requests pinned to an explicit spec id are sharded
  onto a stable worker (hash of the id), so a pinned minority reuses one
  process's compiled-analyzer cache instead of forcing every process to
  compile every historical version.  Unpinned requests go to the worker with
  the fewest outstanding jobs.
* **Telemetry crosses the fork as data.**  Engine events (frozen picklable
  dataclasses, spans included) are forwarded from each worker over the
  result queue and re-emitted into the pool's sink by the parent's collector
  thread -- one journal writer, one metrics registry, and the "compiled once
  per worker, never once per request" counters keep working.  The worker
  resets the fork-inherited ambient sinks first
  (:func:`repro.obs.trace.reset_ambient_sinks`), so nothing is delivered
  twice.
* **Shadow mirroring stays parent-sampled.**  The parent decides at dispatch
  whether a request is mirrored (the observer's ``sample()`` runs exactly
  once per request, in one process); the worker analyzes the mirror *after*
  shipping the served result, and the parent rehydrates both responses
  (:meth:`repro.service.api.AnalyzeResponse.from_dict`) to drive the
  observer's ``observe``/``observe_error`` -- so the canary's events and
  metrics are emitted in the parent, exactly as with the threaded pool.
* **Trace contexts are explicit.**  ``submit(request, context=...)`` ships a
  :class:`~repro.obs.trace.TraceContext` dict to the worker, which adopts it
  around the analysis, so worker-process spans join the HTTP request's
  trace.  The asyncio front door passes contexts explicitly (thread-local
  ambience is meaningless under task interleaving); threaded callers fall
  back to :func:`repro.obs.trace.current_context`.

Example::

    >>> pool = ProcessWorkerPool(store, processes=2, queue_depth=16)
    >>> pool.start()                      # 2 processes forked, 2 compilations
    >>> response = pool.submit(AnalyzeRequest(suite=SuiteSpec(count=5))).result()
    >>> pool.stop()
"""

from __future__ import annotations

import hashlib
import multiprocessing
import queue as queue_module
import random
import signal
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.engine.cache import program_fingerprint
from repro.engine.events import EventSink, NullSink, SpecCompiled, SpecReloaded
from repro.library.registry import build_library_program, build_spec_interface
from repro.obs import trace as _trace
from repro.obs.trace import SpanFinished, TraceContext
from repro.server.pool import (
    DEFAULT_QUEUE_DEPTH,
    MAX_CACHED_ANALYZERS,
    PoolSaturated,
    poll_backoff_delay,
)
from repro.service.analyzer import ClientAnalyzer
from repro.service.api import (
    AnalyzeRequest,
    AnalyzeResponse,
    UnknownAppsError,
    run_request,
)
from repro.service.store import SpecNotFoundError, SpecStore

#: how long stop() waits for a worker to exit cleanly before terminating it
STOP_GRACE_SECONDS = 30.0
#: how long start() waits for every worker to finish its startup compilation
STARTUP_TIMEOUT_SECONDS = 600.0


class _QueueSink(EventSink):
    """Worker-side ambient sink: every event becomes a message to the parent."""

    def __init__(self, out, worker: str):
        self.out = out
        self.worker = worker

    def emit(self, event) -> None:
        try:
            self.out.put(("event", self.worker, event))
        except Exception:  # noqa: BLE001 - telemetry must never kill a worker
            pass


def _evict_stale(analyzers: Dict[str, ClientAnalyzer], protected: set) -> None:
    """Bound a worker's analyzer cache, mirroring the threaded pool's policy."""
    while len(analyzers) > MAX_CACHED_ANALYZERS:
        for spec_id in analyzers:
            if spec_id not in protected:
                del analyzers[spec_id]
                break
        else:
            return


def _worker_main(
    name: str,
    store_root: str,
    jobs,
    results,
    initial_spec_id: str,
    solver: Optional[str] = None,
    analysis_cache_dir: Optional[str] = None,
) -> None:
    """One pre-forked worker: compile once, then serve jobs until the sentinel.

    Module-level (not a closure) so the pool works under the ``spawn`` start
    method too; everything it needs arrives as picklable arguments, and the
    library program/interface are rebuilt in-process (they are deterministic,
    so the fingerprint matches the parent's).
    """
    try:  # the parent owns shutdown; a Ctrl-C broadcast must not race it
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):
        pass
    _trace.reset_ambient_sinks()  # see module docstring: no double delivery
    sink = _QueueSink(results, name)
    _trace.add_ambient_sink(sink)
    try:
        store = SpecStore(store_root)
        library = build_library_program()
        interface = build_spec_interface(library)
    except BaseException as error:  # noqa: BLE001 - surfaced to start()
        results.put(("startup_error", name, f"{type(error).__name__}: {error}"))
        return

    analyzers: Dict[str, ClientAnalyzer] = {}

    def compile_spec(spec_id: str) -> ClientAnalyzer:
        started = time.perf_counter()
        analyzer = ClientAnalyzer.from_store(
            store,
            spec_id=spec_id,
            library_program=library,
            interface=interface,
            solver=solver,
            analysis_cache_dir=analysis_cache_dir,
            # per-process cache files in one shared directory: each worker
            # appends to its own, loads the union -- no write interleaving
            analysis_cache_worker=name,
        )
        sink.emit(
            SpecCompiled(
                worker=name,
                spec_id=analyzer.spec_id,
                elapsed_seconds=time.perf_counter() - started,
            )
        )
        return analyzer

    try:
        analyzers[initial_spec_id] = compile_spec(initial_spec_id)
    except BaseException as error:  # noqa: BLE001 - surfaced to start()
        results.put(("startup_error", name, f"{type(error).__name__}: {error}"))
        return
    results.put(("ready", name, None))

    while True:
        message = jobs.get()
        if message is None:
            return
        job_id, request_doc, target_spec_id, context_doc, shadow_spec_id, enqueued_at = message
        # CLOCK_MONOTONIC is system-wide on Linux, so the parent's enqueue
        # stamp is comparable here; clamp anyway for exotic platforms
        queue_seconds = max(0.0, time.perf_counter() - enqueued_at)
        context = TraceContext.from_dict(context_doc) if context_doc else None
        if context is not None:
            # the dequeue is the only place queue wait is known, so the span
            # is synthesized here as a child of the request span
            sink.emit(
                SpanFinished(
                    name="server.queue_wait",
                    trace_id=context.trace_id,
                    span_id=_trace.new_id(),
                    parent_id=context.span_id,
                    started_at=time.time() - queue_seconds,
                    elapsed_seconds=queue_seconds,
                    attrs=(("worker", name),),
                )
            )
        try:
            request = AnalyzeRequest.from_dict(request_doc)
        except (ValueError, TypeError) as error:
            results.put(("result", name, job_id, "error", str(error), None))
            continue
        spec_id = request.spec_id if request.spec_id is not None else target_spec_id
        analysis_started = time.perf_counter()
        try:
            if spec_id not in analyzers:
                analyzers[spec_id] = compile_spec(spec_id)
            _evict_stale(
                analyzers, {target_spec_id, spec_id, shadow_spec_id} - {None}
            )
            with _trace.activate(context):
                response = run_request(request, analyzers[spec_id], events=sink)
        except SpecNotFoundError as error:
            results.put(("result", name, job_id, "spec_not_found", str(error), None))
            continue
        except UnknownAppsError as error:
            results.put(("result", name, job_id, "unknown_apps", str(error), None))
            continue
        except BaseException as error:  # noqa: BLE001 - the wire needs an answer
            results.put(
                ("result", name, job_id, "error", f"{type(error).__name__}: {error}", None)
            )
            continue
        reports = response.result.reports
        timing = {
            "queue_seconds": queue_seconds,
            "analysis_seconds": time.perf_counter() - analysis_started,
            "andersen_seconds": sum(r.timing.andersen_seconds for r in reports),
            "taint_seconds": sum(r.timing.taint_seconds for r in reports),
        }
        if any(r.timing.solve_outcome is not None for r in reports):
            timing["solve_seconds"] = sum(
                r.timing.solve_seconds or 0.0 for r in reports
            )
        results.put(("result", name, job_id, "ok", response.to_dict(), timing))
        if shadow_spec_id is not None and request.spec_id is None:
            # strictly after the served result shipped: nothing below can
            # affect what the client got
            try:
                if shadow_spec_id not in analyzers:
                    analyzers[shadow_spec_id] = compile_spec(shadow_spec_id)
                with _trace.activate(context):
                    shadowed = run_request(request, analyzers[shadow_spec_id], events=sink)
                results.put(("shadow", name, job_id, "ok", shadowed.to_dict(), None))
            except Exception as error:  # noqa: BLE001 - shadows are best-effort
                results.put(
                    ("shadow", name, job_id, "error", f"{type(error).__name__}: {error}", None)
                )


@dataclass
class _Pending:
    """Parent-side state of one dispatched job."""

    request: AnalyzeRequest
    future: Future
    worker: str
    shadow_spec_id: Optional[str] = None
    served: Optional[AnalyzeResponse] = None  # kept only until the shadow lands


_ERROR_TYPES = {
    "spec_not_found": SpecNotFoundError,
    "unknown_apps": UnknownAppsError,
}


class ProcessWorkerPool:
    """A fixed fleet of pre-forked worker processes serving one spec store.

    API-compatible with :class:`~repro.server.pool.WarmWorkerPool` where the
    HTTP layers care (``submit``/``start``/``stop``, queue and spec
    properties, shadow hooks, store polling), so the front door treats the
    two interchangeably.  ``queue_depth`` bounds the *total* outstanding
    requests across the fleet -- the admission contract a 503 +
    ``Retry-After`` is derived from.
    """

    def __init__(
        self,
        store: SpecStore,
        processes: int = 2,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        events: Optional[EventSink] = None,
        library_program=None,
        mp_context: Optional[str] = None,
        solver: Optional[str] = None,
        analysis_cache_dir: Optional[str] = None,
    ):
        self.store = store
        self.processes = max(1, int(processes))
        self.queue_capacity = max(1, int(queue_depth))
        self.events = events if events is not None else NullSink()
        self.solver = solver
        self.analysis_cache_dir = analysis_cache_dir
        # parent-side library build is for the fingerprint only; each worker
        # rebuilds its own copy (deterministic, so fingerprints agree)
        self.library_program = (
            library_program if library_program is not None else build_library_program()
        )
        self._fingerprint = program_fingerprint(self.library_program)
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(mp_context)
        self._job_queues: List = []
        self._results = None
        self._processes: List = []
        self._collector: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._started = False
        self._job_counter = 0
        self._pending: Dict[int, _Pending] = {}
        self._outstanding: Dict[str, int] = {}
        self._target_spec_id: Optional[str] = None
        self._startup_errors: List[str] = []
        self._ready_events: Dict[str, threading.Event] = {}
        self._shadow = None
        self._poller: Optional[threading.Thread] = None
        self._stop_polling_event = threading.Event()
        self._poll_failures = 0

    # ----------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Fork the fleet and block until every worker has compiled its spec.

        Raises :class:`~repro.service.store.SpecNotFoundError` when the store
        holds nothing for this library (checked before any fork), and
        ``RuntimeError`` when a worker fails its startup compilation.
        """
        if self._started or self._processes:
            raise RuntimeError("pool already started")
        record = self.store.latest(fingerprint=self._fingerprint)
        if record is None:
            raise SpecNotFoundError(
                f"no stored specification for this library in {self.store.root} "
                "(run `repro learn` before `repro serve`)"
            )
        self._target_spec_id = record.spec_id
        self._startup_errors = []
        self._pending = {}
        self._results = self._ctx.Queue()
        self._job_queues = [self._ctx.Queue() for _ in range(self.processes)]
        self._ready_events = {}
        self._outstanding = {}
        names = [f"proc-{index}" for index in range(self.processes)]
        for name, jobs in zip(names, self._job_queues):
            self._ready_events[name] = threading.Event()
            self._outstanding[name] = 0
            process = self._ctx.Process(
                target=_worker_main,
                args=(
                    name,
                    str(self.store.root),
                    jobs,
                    self._results,
                    record.spec_id,
                    self.solver,
                    self.analysis_cache_dir,
                ),
                name=f"repro-serve-{name}",
                daemon=True,
            )
            self._processes.append(process)
            process.start()
        self._collector = threading.Thread(
            target=self._collector_loop, name="repro-serve-collector", daemon=True
        )
        self._collector.start()
        deadline = time.monotonic() + STARTUP_TIMEOUT_SECONDS
        for name, event in self._ready_events.items():
            if not event.wait(max(0.0, deadline - time.monotonic())):
                self._startup_errors.append(f"{name}: startup timed out")
        if self._startup_errors:
            errors = "; ".join(self._startup_errors)
            self.stop()
            raise RuntimeError(f"worker startup failed: {errors}")
        with self._lock:
            self._started = True

    def stop(self) -> None:
        """Stop polling, retire every worker, fail any unresolved futures."""
        self.stop_polling()
        with self._lock:
            self._started = False
        for jobs in self._job_queues:
            try:
                jobs.put(None)
            except (ValueError, OSError):
                pass
        deadline = time.monotonic() + STOP_GRACE_SECONDS
        for process in self._processes:
            process.join(max(0.1, deadline - time.monotonic()))
            if process.is_alive():
                process.terminate()
                process.join(5.0)
        if self._results is not None:
            self._results.put(("stop",))
        if self._collector is not None:
            self._collector.join()
            self._collector = None
        with self._lock:
            stragglers = list(self._pending.values())
            self._pending = {}
        for job in stragglers:
            if not job.future.done():
                job.future.set_exception(RuntimeError("pool is shutting down"))
        for jobs in self._job_queues:
            jobs.close()
        if self._results is not None:
            self._results.close()
            self._results = None
        self._job_queues = []
        self._processes = []

    def __enter__(self) -> "ProcessWorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ----------------------------------------------------------------- requests
    def submit(
        self, request: AnalyzeRequest, context: Optional[TraceContext] = None
    ) -> "Future[AnalyzeResponse]":
        """Dispatch one request to a worker process; never blocks.

        Raises :class:`~repro.server.pool.PoolSaturated` once
        ``queue_depth`` requests are outstanding across the fleet.
        *context* carries the caller's trace explicitly (required from
        asyncio, where thread-local ambience is meaningless); threaded
        callers may omit it and inherit :func:`repro.obs.trace.current_context`.
        """
        if context is None:
            context = _trace.current_context()
        shadow = self.shadow
        future: "Future[AnalyzeResponse]" = Future()
        with self._lock:
            if not self._started:
                raise RuntimeError("pool is not running (call start() first)")
            if len(self._pending) >= self.queue_capacity:
                raise PoolSaturated(self.queue_capacity)
            target = self._target_spec_id
            shadow_spec_id = None
            if shadow is not None and request.spec_id is None:
                try:
                    if shadow.sample():
                        shadow_spec_id = shadow.spec_id
                except Exception:  # noqa: BLE001 - a broken sampler mirrors nothing
                    shadow_spec_id = None
            worker = self._route(request)
            self._job_counter += 1
            job_id = self._job_counter
            self._pending[job_id] = _Pending(
                request=request, future=future, worker=worker, shadow_spec_id=shadow_spec_id
            )
            self._outstanding[worker] += 1
            index = int(worker.rsplit("-", 1)[1])
        self._job_queues[index].put(
            (
                job_id,
                request.to_dict(),
                target,
                context.to_dict() if context is not None else None,
                shadow_spec_id,
                time.perf_counter(),
            )
        )
        return future

    def _route(self, request: AnalyzeRequest) -> str:
        """Pick a worker: stable shard for pinned ids, least-loaded otherwise."""
        names = sorted(self._outstanding)
        if request.spec_id is not None:
            digest = hashlib.sha256(request.spec_id.encode("utf-8")).hexdigest()
            return names[int(digest, 16) % len(names)]
        return min(names, key=lambda name: (self._outstanding[name], name))

    # ---------------------------------------------------------------- collector
    def _collector_loop(self) -> None:
        """Drain the shared result queue: events, results, shadows, lifecycle.

        The single place worker messages re-enter the parent -- which is what
        keeps one journal writer, one metrics registry, and a race-free
        shadow observer without any cross-process locking.
        """
        while True:
            message = self._results.get()
            kind = message[0]
            if kind == "stop":
                # worker puts and this parent put are not globally ordered
                # across processes; drain briefly so late results still land
                while True:
                    try:
                        message = self._results.get(timeout=0.2)
                    except (queue_module.Empty, OSError, ValueError):
                        return
                    if message[0] != "stop":
                        self._dispatch_message(message)
                return
            self._dispatch_message(message)

    def _dispatch_message(self, message) -> None:
        try:
            kind = message[0]
            if kind == "ready":
                self._ready_events[message[1]].set()
            elif kind == "startup_error":
                self._startup_errors.append(f"{message[1]}: {message[2]}")
                self._ready_events[message[1]].set()
            elif kind == "event":
                self.events.emit(message[2])
            elif kind == "result":
                self._on_result(*message[1:])
            elif kind == "shadow":
                self._on_shadow(*message[1:])
        except Exception:  # noqa: BLE001 - the collector must outlive bad messages
            pass

    def _on_result(self, worker: str, job_id: int, status: str, payload, timing) -> None:
        with self._lock:
            job = self._pending.get(job_id)
        if job is None:
            return
        if status == "ok":
            response = AnalyzeResponse.from_dict(payload)
            if timing:
                # timing attributes ride the future (no __slots__), so HTTP
                # layers render Server-Timing without changing the contract
                for key, value in timing.items():
                    setattr(job.future, key, value)
            expects_shadow = job.shadow_spec_id is not None
            with self._lock:
                if expects_shadow:
                    job.served = response  # keep pending until the shadow lands
                else:
                    self._pending.pop(job_id, None)
                    self._outstanding[worker] -= 1
            job.future.set_result(response)
        else:
            with self._lock:
                self._pending.pop(job_id, None)
                self._outstanding[worker] -= 1
            error_type = _ERROR_TYPES.get(status, RuntimeError)
            job.future.set_exception(error_type(payload))

    def _on_shadow(self, worker: str, job_id: int, status: str, payload, _timing) -> None:
        with self._lock:
            job = self._pending.pop(job_id, None)
            if job is not None:
                self._outstanding[worker] -= 1
        if job is None:
            return
        shadow = self.shadow
        if shadow is None:
            return
        try:
            if status == "ok":
                shadow.observe(job.request, job.served, AnalyzeResponse.from_dict(payload))
            else:
                shadow.observe_error(job.request, RuntimeError(payload))
        except Exception:  # noqa: BLE001 - observer bugs stay out of serving
            pass

    # --------------------------------------------------------------- properties
    @property
    def running(self) -> bool:
        return self._started

    @property
    def queue_depth(self) -> int:
        """Outstanding requests across the fleet (dispatched, unresolved)."""
        with self._lock:
            return len(self._pending)

    @property
    def workers(self) -> int:
        """Worker count under the pool-API name the HTTP layers expect."""
        return self.processes

    @property
    def current_spec_id(self) -> Optional[str]:
        with self._lock:
            return self._target_spec_id

    @property
    def fingerprint(self) -> str:
        return self._fingerprint

    # ------------------------------------------------------------ shadow canary
    def set_shadow(self, shadow) -> None:
        """Install a shadow observer (``spec_id`` + ``sample``/``observe``)."""
        with self._lock:
            self._shadow = shadow

    def clear_shadow(self) -> None:
        with self._lock:
            self._shadow = None

    @property
    def shadow(self):
        with self._lock:
            return self._shadow

    # --------------------------------------------------------------- hot reload
    def poll_once(self) -> bool:
        """Re-read the store index; retarget the fleet on a newer latest spec.

        Only the dispatch target moves: jobs already queued carry the spec id
        they were dispatched under, and each worker compiles the new spec
        lazily on its first post-swap job -- in-flight requests are never
        migrated.
        """
        record = self.store.latest(fingerprint=self._fingerprint)
        if record is None:
            return False
        with self._lock:
            if record.spec_id == self._target_spec_id:
                return False
            previous = self._target_spec_id
            self._target_spec_id = record.spec_id
        self.events.emit(SpecReloaded(previous_spec_id=previous or "", spec_id=record.spec_id))
        return True

    def start_polling(self, interval_seconds: float) -> None:
        """Background store polling with the threaded pool's backoff policy."""
        if self._poller is not None or interval_seconds <= 0:
            return
        self._stop_polling_event.clear()
        rng = random.Random()

        def loop() -> None:
            while True:
                delay = poll_backoff_delay(interval_seconds, self._poll_failures, rng)
                if self._stop_polling_event.wait(delay):
                    return
                try:
                    self.poll_once()
                    self._poll_failures = 0
                except Exception:  # noqa: BLE001 - transient store read error
                    self._poll_failures += 1

        self._poller = threading.Thread(target=loop, name="repro-serve-poller", daemon=True)
        self._poller.start()

    @property
    def poll_failures(self) -> int:
        return self._poll_failures

    def stop_polling(self) -> None:
        if self._poller is None:
            return
        self._stop_polling_event.set()
        self._poller.join()
        self._poller = None


__all__ = [
    "ProcessWorkerPool",
    "STARTUP_TIMEOUT_SECONDS",
    "STOP_GRACE_SECONDS",
]
