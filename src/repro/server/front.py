"""The asyncio front door of the sharded, multi-process serving tier.

:class:`ShardedAnalysisServer` is the multi-process counterpart of
:class:`~repro.server.http.AnalysisServer`: the same four endpoints, the
same status mapping, the same ``X-Repro-Trace-Id`` / ``Server-Timing``
headers, the same hot-reload and shadow-canary semantics -- but requests are
accepted by a single-threaded asyncio event loop (stdlib streams, manual
HTTP/1.1 framing, keep-alive) and analyzed by a
:class:`~repro.server.procpool.ProcessWorkerPool` of pre-forked worker
processes, so throughput scales with cores instead of capping at one GIL.

Two request-shaping layers live in the front door itself, above the pool's
bounded queue:

* **Admission control** -- at most ``admission_limit`` ``/analyze`` requests
  may be in flight through the pool at once; excess arrivals are shed
  immediately with ``503`` + ``Retry-After`` (and a dedicated metric), so a
  burst fails fast at the door instead of stacking up in the event loop.
  Coalesced followers do not count: they consume no pool capacity.
* **Request coalescing** -- the analysis is deterministic, so two in-flight
  requests with the same :func:`repro.service.api.canonical_request_key`
  (canonical document + resolved spec id, a faithful stand-in for the
  corpus's ``repro.lang.serialize`` program digests) must produce the same
  bytes.  The first becomes the *leader*; the rest await its response and
  receive the leader's body verbatim (bit-identical, flagged with
  ``X-Repro-Coalesced: 1``).  Keys resolve the spec id at arrival time, so a
  hot reload never coalesces across spec versions.

Trace note: the loop handles many requests on one thread, so the
thread-local ``span()`` context manager would cross-contaminate interleaved
tasks.  The front door mints each request's :class:`~repro.obs.trace.TraceContext`
explicitly, ships it to the worker through ``pool.submit(context=...)``, and
emits the root ``server.request`` span by hand when the response is written.

Example::

    >>> server = ShardedAnalysisServer(store, port=0, processes=2)
    >>> server.start()
    >>> server.url
    'http://127.0.0.1:40121'
    >>> server.close()
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
import time
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.engine.events import EventSink, FanOutSink
from repro.obs import trace as _trace
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE
from repro.obs.trace import SpanFinished, TraceContext
from repro.server.http import (
    DEFAULT_HOST,
    DEFAULT_POLL_INTERVAL_SECONDS,
    DEFAULT_PORT,
    spec_status,
)
from repro.server.metrics import MetricsSink, ServerMetrics
from repro.server.pool import DEFAULT_QUEUE_DEPTH, PoolSaturated
from repro.server.procpool import ProcessWorkerPool
from repro.service.api import (
    AnalyzeRequest,
    UnknownAppsError,
    canonical_request_key,
)
from repro.service.store import SpecNotFoundError, SpecStore

JSON_CONTENT_TYPE = "application/json"

#: (status, body bytes, extra headers, content type) -- one rendered response
_Rendered = Tuple[int, bytes, Dict[str, str], str]


def _render_json(status: int, payload) -> bytes:
    """Match the threaded server byte for byte: compact 200s, readable errors."""
    rendered = (
        json.dumps(payload, separators=(",", ":"))
        if status == 200
        else json.dumps(payload, indent=1)
    )
    return rendered.encode("utf-8") + b"\n"


def _server_timing(future) -> str:
    """The per-phase breakdown header from the worker's shipped timings."""
    parts = []
    for phase, attr in (
        ("queue", "queue_seconds"),
        ("andersen", "andersen_seconds"),
        ("taint", "taint_seconds"),
        ("solve", "solve_seconds"),
        ("analysis", "analysis_seconds"),
    ):
        seconds = getattr(future, attr, None)
        if seconds is not None:
            parts.append(f"{phase};dur={seconds * 1000.0:.3f}")
    return ", ".join(parts)


class ShardedAnalysisServer:
    """Process pool + metrics + asyncio HTTP front door, one lifecycle.

    ``start()`` forks and warms every worker process, begins store polling
    for hot reload, and serves HTTP from an event loop on a background
    thread; ``close()`` (or the context manager) tears all of it down.
    ``port=0`` binds an ephemeral port, read back from :attr:`address` /
    :attr:`url`.
    """

    def __init__(
        self,
        store: SpecStore,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        processes: int = 2,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        events: Optional[EventSink] = None,
        poll_interval: float = DEFAULT_POLL_INTERVAL_SECONDS,
        metrics: Optional[ServerMetrics] = None,
        library_program=None,
        admission_limit: Optional[int] = None,
        coalesce: bool = True,
        mp_context: Optional[str] = None,
        solver: Optional[str] = None,
        analysis_cache_dir: Optional[str] = None,
    ):
        self.store = store
        self.host = host
        self.port = port
        self.poll_interval = poll_interval
        self.metrics = metrics if metrics is not None else ServerMetrics()
        sinks: list = [MetricsSink(self.metrics)]
        if events is not None:
            sinks.append(events)
        self.events = FanOutSink(sinks)
        self.pool = ProcessWorkerPool(
            store,
            processes=processes,
            queue_depth=queue_depth,
            events=self.events,
            library_program=library_program,
            mp_context=mp_context,
            solver=solver,
            analysis_cache_dir=analysis_cache_dir,
        )
        # headroom above the pool bound: the door sheds before the loop fills
        # with tasks that would only be shed by the pool anyway
        self.admission_limit = (
            admission_limit
            if admission_limit is not None
            else queue_depth + 2 * self.pool.processes
        )
        self.coalesce = coalesce
        self._inflight = 0
        self._leaders: Dict[str, "asyncio.Future[_Rendered]"] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._loop_ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._bound: Optional[Tuple[str, int]] = None

    # ----------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Warm the worker fleet, bind the socket, serve on a loop thread."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self.pool.start()
        self.pool.start_polling(self.poll_interval)
        self._loop_ready.clear()
        self._startup_error = None
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-serve-front", daemon=True
        )
        self._thread.start()
        self._loop_ready.wait()
        if self._startup_error is not None:
            error = self._startup_error
            self._thread.join()
            self._thread = None
            self.pool.stop()
            raise error

    def _run_loop(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        try:
            server = await asyncio.start_server(self._handle_client, self.host, self.port)
        except OSError as error:
            self._startup_error = error
            self._loop_ready.set()
            return
        self._bound = server.sockets[0].getsockname()[:2]
        self._loop_ready.set()
        async with server:
            await self._shutdown.wait()

    def serve_forever(self) -> None:
        """Block the calling thread until :meth:`close` (or interrupt)."""
        if self._thread is None:
            raise RuntimeError("server is not running (call start() first)")
        self._thread.join()

    def close(self) -> None:
        """Stop accepting connections, drain the fleet, stop the workers."""
        if self._thread is not None and self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(self._shutdown.set)
            except RuntimeError:
                pass  # loop already closed
            self._thread.join()
            self._thread = None
            self._loop = None
            self._bound = None
        if self.pool.running:  # tolerate close() after a failed start()
            self.pool.stop()

    def __enter__(self) -> "ShardedAnalysisServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ address
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` -- the real port even when 0 was asked."""
        if self._bound is None:
            raise RuntimeError("server is not running")
        return self._bound

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # --------------------------------------------------------------- connection
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One keep-alive HTTP/1.1 connection: parse, route, frame, repeat."""
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                parts = request_line.decode("latin-1").strip().split()
                if len(parts) != 3:
                    await self._write(
                        writer,
                        (400, _render_json(400, {"error": "malformed request line"}), {}, JSON_CONTENT_TYPE),
                        close=True,
                    )
                    break
                method, target, version = parts
                headers: Dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, sep, value = line.decode("latin-1").partition(":")
                    if sep:
                        headers[name.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length", "0") or "0")
                except ValueError:
                    # an unparseable Content-Length makes the rest of the
                    # stream unframeable; answer and close, like the threaded tier
                    await self._write(
                        writer,
                        (400, _render_json(400, {"error": "invalid Content-Length header"}), {}, JSON_CONTENT_TYPE),
                        close=True,
                    )
                    break
                body = await reader.readexactly(length) if length > 0 else b""
                close = (
                    headers.get("connection", "").lower() == "close"
                    or version.upper() == "HTTP/1.0"
                )
                rendered = await self._route(method, target, headers, body)
                await self._write(writer, rendered, close=close)
                if close:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-request; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _write(
        self, writer: asyncio.StreamWriter, rendered: _Rendered, close: bool
    ) -> None:
        status, body, extra_headers, content_type = rendered
        reason = http.client.responses.get(status, "")
        head = [
            f"HTTP/1.1 {status} {reason}",
            "Server: repro-serve/2",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
        ]
        if close:
            head.append("Connection: close")
        for name, value in extra_headers.items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

    # ------------------------------------------------------------------- routes
    async def _route(
        self, method: str, target: str, headers: Dict[str, str], body: bytes
    ) -> _Rendered:
        parsed = urlsplit(target)
        if method == "POST":
            if parsed.path != "/analyze":
                return 404, _render_json(404, {"error": f"no such endpoint: {target}"}), {}, JSON_CONTENT_TYPE
            return await self._analyze(headers, body)
        if method == "GET":
            return self._get(parsed)
        return (
            405,
            _render_json(405, {"error": f"method {method} not allowed"}),
            {},
            JSON_CONTENT_TYPE,
        )

    def _get(self, parsed) -> _Rendered:
        if parsed.path == "/metrics":
            status_view = spec_status(self.pool, self.store)
            formats = parse_qs(parsed.query).get("format", ["json"])
            if formats[-1] == "prometheus":
                text = self.metrics.to_prometheus(
                    queue_depth=self.pool.queue_depth,
                    queue_capacity=self.pool.queue_capacity,
                    workers=self.pool.workers,
                    active_version=status_view["active_version"],
                )
                return 200, text.encode("utf-8"), {}, PROMETHEUS_CONTENT_TYPE
            snapshot = self.metrics.snapshot(
                queue_depth=self.pool.queue_depth,
                queue_capacity=self.pool.queue_capacity,
                workers=self.pool.workers,
                active_version=status_view["active_version"],
            )
            return 200, _render_json(200, snapshot), {}, JSON_CONTENT_TYPE
        if parsed.path == "/healthz":
            payload = {
                "status": "ok",
                "spec_id": self.pool.current_spec_id,
                "workers": self.pool.workers,
                "processes": self.pool.processes,
                "uptime_seconds": time.time() - self.metrics.started_at,
            }
            payload.update(spec_status(self.pool, self.store))
            return 200, _render_json(200, payload), {}, JSON_CONTENT_TYPE
        if parsed.path == "/specs":
            states = self.store.states()
            specs = []
            for record in self.store.records():
                entry = record.to_dict()
                entry["state"] = states.get(record.spec_id)
                specs.append(entry)
            payload = {"current": self.pool.current_spec_id, "specs": specs}
            payload.update(spec_status(self.pool, self.store))
            return 200, _render_json(200, payload), {}, JSON_CONTENT_TYPE
        return 404, _render_json(404, {"error": f"no such endpoint: {parsed.path}"}), {}, JSON_CONTENT_TYPE

    # ------------------------------------------------------------------ analyze
    async def _analyze(self, headers: Dict[str, str], body: bytes) -> _Rendered:
        started_wall = time.time()
        started = time.perf_counter()
        client_trace = (headers.get("x-repro-trace-id") or "").strip() or None
        # minted by hand: the loop thread interleaves requests, so the
        # thread-local span() contextmanager would attach spans to whichever
        # task last switched in
        context = TraceContext(
            trace_id=client_trace if client_trace else _trace.new_id(),
            span_id=_trace.new_id(),
        )
        status, payload, extra, content_type = await self._analyze_inner(body, context)
        elapsed = time.perf_counter() - started
        self.events.emit(
            SpanFinished(
                name="server.request",
                trace_id=context.trace_id,
                span_id=context.span_id,
                parent_id=None,
                started_at=started_wall,
                elapsed_seconds=elapsed,
                attrs=(("status", str(status)),),
            )
        )
        self.metrics.record_request(status, elapsed)
        extra = dict(extra)
        extra["X-Repro-Trace-Id"] = context.trace_id
        return status, payload, extra, content_type

    async def _analyze_inner(self, body: bytes, context: TraceContext) -> _Rendered:
        try:
            data = json.loads(body.decode("utf-8")) if body else {}
        except (ValueError, UnicodeDecodeError) as error:
            return 400, _render_json(400, {"error": f"invalid JSON body: {error}"}), {}, JSON_CONTENT_TYPE
        try:
            request = AnalyzeRequest.from_dict(data)
        except (ValueError, TypeError, AttributeError) as error:
            return 400, _render_json(400, {"error": f"bad request: {error}"}), {}, JSON_CONTENT_TYPE

        key = (
            canonical_request_key(request, self.pool.current_spec_id)
            if self.coalesce
            else None
        )
        if key is not None:
            leader = self._leaders.get(key)
            if leader is not None:
                # follower: no admission slot, no pool submit -- the leader's
                # bytes are this request's bytes, by determinism
                self.metrics.record_coalesced()
                try:
                    status, payload, extra, content_type = await asyncio.shield(leader)
                except Exception:  # noqa: BLE001 - leader died; have them retry
                    return (
                        503,
                        _render_json(503, {"error": "coalesced leader failed; retry"}),
                        {"Retry-After": "0"},
                        JSON_CONTENT_TYPE,
                    )
                extra = dict(extra)
                extra["X-Repro-Coalesced"] = "1"
                return status, payload, extra, content_type

        if self._inflight >= self.admission_limit:
            self.metrics.record_admission_rejected()
            return (
                503,
                _render_json(
                    503,
                    {
                        "error": (
                            f"admission limit reached "
                            f"({self.admission_limit} requests in flight)"
                        ),
                        "retry_after_seconds": 1,
                    },
                ),
                {"Retry-After": "1"},
                JSON_CONTENT_TYPE,
            )

        waiter: Optional["asyncio.Future[_Rendered]"] = None
        if key is not None:
            waiter = asyncio.get_running_loop().create_future()
            self._leaders[key] = waiter
        self._inflight += 1
        rendered: Optional[_Rendered] = None
        try:
            rendered = await self._serve_via_pool(request, context)
            return rendered
        finally:
            self._inflight -= 1
            if key is not None:
                self._leaders.pop(key, None)
                if waiter is not None and not waiter.done():
                    # resolve even on leader cancellation so followers never
                    # hang; they see a retryable 503 instead of an exception
                    waiter.set_result(
                        rendered
                        if rendered is not None
                        else (
                            503,
                            _render_json(503, {"error": "coalesced leader cancelled; retry"}),
                            {"Retry-After": "0"},
                            JSON_CONTENT_TYPE,
                        )
                    )

    async def _serve_via_pool(self, request: AnalyzeRequest, context: TraceContext) -> _Rendered:
        try:
            future = self.pool.submit(request, context=context)
        except PoolSaturated as error:
            return (
                503,
                _render_json(
                    503,
                    {"error": str(error), "retry_after_seconds": error.retry_after_seconds},
                ),
                {"Retry-After": str(error.retry_after_seconds)},
                JSON_CONTENT_TYPE,
            )
        except RuntimeError as error:  # pool stopping: shutdown race ends 503
            return (
                503,
                _render_json(503, {"error": f"server unavailable: {error}"}),
                {"Retry-After": "1"},
                JSON_CONTENT_TYPE,
            )
        try:
            response = await asyncio.wrap_future(future)
        except SpecNotFoundError as error:
            return 404, _render_json(404, {"error": f"unknown spec: {error}"}), {}, JSON_CONTENT_TYPE
        except UnknownAppsError as error:
            return 400, _render_json(400, {"error": f"bad request: {error}"}), {}, JSON_CONTENT_TYPE
        except Exception as error:  # noqa: BLE001 - the wire needs *some* answer
            return 500, _render_json(500, {"error": f"analysis failed: {error}"}), {}, JSON_CONTENT_TYPE
        return (
            200,
            _render_json(200, response.to_dict()),
            {"Server-Timing": _server_timing(future)},
            JSON_CONTENT_TYPE,
        )


__all__ = [
    "ShardedAnalysisServer",
]
