"""A seeded load generator for the analysis daemon.

``repro bench-serve`` (and ``examples/serve_http.py``) use this module to
fire N copies of one benchgen-derived
:class:`~repro.service.api.AnalyzeRequest` at a running daemon and report
sustained throughput and client-observed latency.  Because the request
document fully determines its corpus (seeded suite) and the analysis is
deterministic, every response must be **bit-identical** to running
:func:`repro.service.api.handle_request` in-process --
:func:`verify_against_inprocess` asserts exactly that, which is the
end-to-end proof that the warm-worker fast path changes *where* the work
happens, never *what* it computes.

Two load models, one result shape:

* :func:`run_load` is **closed-loop**: a fixed set of client threads, each
  issuing its next request only after the previous one finished.  Throughput
  self-limits to what the server sustains, which is why the closed-loop
  number is the trajectory headline (``BENCH_*.json``).
* :func:`run_open_load` is **open-loop**: requests are dispatched on a fixed
  schedule (``rate_rps``) regardless of how the server is doing, the way
  independent clients actually arrive.  Latency is measured from the
  *intended* send time, so server-induced queueing cannot hide in the
  generator -- the coordinated-omission failure mode of naive harnesses.

Both models measure a request's latency **from its first attempt**: a 503
round-trip and its ``Retry-After`` sleep are part of what the client waited,
so they stay in the reported number, while the final attempt's service time
is kept separately (:attr:`LoadResult.service_seconds`).  Clients honor
backpressure: a ``503`` is counted, then retried after the server's
``Retry-After`` hint (numeric seconds or HTTP-date), so a bounded queue
shapes the load instead of failing it.

Example::

    >>> request = AnalyzeRequest(suite=SuiteSpec(count=3, max_statements=50))
    >>> result = run_load("http://127.0.0.1:8080", request, total_requests=50, clients=8)
    >>> result.ok, result.throughput_rps
    (50, 11.3)
"""

from __future__ import annotations

import json
import queue
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field, replace
from datetime import datetime, timezone
from email.utils import parsedate_to_datetime
from typing import Dict, List, Optional, Tuple

from repro.server.metrics import percentile
from repro.service.api import AnalyzeRequest, handle_request
from repro.service.store import SpecStore

DEFAULT_TIMEOUT_SECONDS = 600.0
DEFAULT_MAX_ATTEMPTS = 60
#: fallback sleep before retrying a 503 that carried no usable Retry-After
DEFAULT_RETRY_SLEEP_SECONDS = 0.1


def parse_retry_after(value: Optional[str]) -> Optional[float]:
    """``Retry-After`` header -> seconds to wait, or ``None`` if unusable.

    RFC 9110 allows both forms -- ``Retry-After: 3`` (delay-seconds) and
    ``Retry-After: Fri, 08 Aug 2026 07:28:00 GMT`` (HTTP-date) -- and a
    load client must not die on either (an uncaught ``ValueError`` from
    ``float()`` once killed whole bench client threads silently).  Dates in
    the past and negative delays clamp to ``0.0``, which callers must treat
    as "retry immediately", distinct from ``None`` ("no hint given").
    """
    if value is None:
        return None
    text = str(value).strip()
    if not text:
        return None
    try:
        seconds = float(text)
    except ValueError:
        try:
            when = parsedate_to_datetime(text)
        except (TypeError, ValueError):
            return None
        if when is None:  # pre-3.10 parsedate behavior, kept for safety
            return None
        if when.tzinfo is None:
            when = when.replace(tzinfo=timezone.utc)
        seconds = (when - datetime.now(timezone.utc)).total_seconds()
    return max(0.0, seconds)


@dataclass
class LoadResult:
    """Everything one load run observed, from the client side of the wire."""

    total_requests: int
    clients: int
    elapsed_seconds: float
    statuses: Dict[int, int]
    retries_after_503: int
    #: per-request latency measured from the FIRST attempt (closed loop) or
    #: the intended send time (open loop) -- 503 round-trips and Retry-After
    #: sleeps are part of what the client waited, so they are in here
    latencies_seconds: List[float]
    #: parsed JSON bodies of the 200 responses, indexed by request number
    responses: Dict[int, dict] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)
    #: wall-clock of the final (successful) attempt alone -- the server's
    #: service time, without the backpressure wait the latency includes
    service_seconds: List[float] = field(default_factory=list)
    #: attempts each successful request needed (1 = no 503 on the way)
    attempts: List[int] = field(default_factory=list)
    #: ``"closed"`` (:func:`run_load`) or ``"open"`` (:func:`run_open_load`)
    mode: str = "closed"
    #: the scheduled arrival rate of an open-loop run (``None`` when closed)
    target_rps: Optional[float] = None
    #: open loop only: how far behind schedule each dispatch actually started
    #: (a loaded generator shows up here instead of silently skewing latency)
    send_lateness_seconds: List[float] = field(default_factory=list)

    @property
    def ok(self) -> int:
        return self.statuses.get(200, 0)

    @property
    def throughput_rps(self) -> float:
        return self.ok / self.elapsed_seconds if self.elapsed_seconds > 0 else 0.0

    def latency_percentile(self, fraction: float) -> Optional[float]:
        if not self.latencies_seconds:
            return None
        return percentile(sorted(self.latencies_seconds), fraction)

    def service_percentile(self, fraction: float) -> Optional[float]:
        if not self.service_seconds:
            return None
        return percentile(sorted(self.service_seconds), fraction)

    def summary(self) -> str:
        label = "open-loop" if self.mode == "open" else "closed-loop"
        rate = f" at {self.target_rps:g} req/s scheduled" if self.target_rps else ""
        lines = [
            f"{self.ok}/{self.total_requests} requests ok ({label}{rate}, "
            f"{self.clients} clients) in {self.elapsed_seconds:.2f}s "
            f"({self.throughput_rps:.1f} req/s)",
        ]
        if self.latencies_seconds:
            lines.append(
                "latency (from first attempt): "
                + ", ".join(
                    f"p{f:g}={self.latency_percentile(f):.3f}s" for f in (50.0, 90.0, 99.0)
                )
            )
        if self.service_seconds:
            lines.append(
                "service (final attempt only): "
                + ", ".join(
                    f"p{f:g}={self.service_percentile(f):.3f}s" for f in (50.0, 90.0, 99.0)
                )
            )
        if self.retries_after_503:
            lines.append(f"backpressure: {self.retries_after_503} retries after 503")
        for status, count in sorted(self.statuses.items()):
            if status != 200:
                lines.append(f"status {status}: {count}")
        for error in self.errors[:5]:
            lines.append(f"error: {error}")
        return "\n".join(lines)


def post_analyze(
    base_url: str, payload: bytes, timeout: float = DEFAULT_TIMEOUT_SECONDS
) -> Tuple[int, dict, Optional[float]]:
    """POST one request body; returns ``(status, body, retry_after_seconds)``."""
    http_request = urllib.request.Request(
        base_url.rstrip("/") + "/analyze",
        data=payload,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(http_request, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode("utf-8")), None
    except urllib.error.HTTPError as error:
        body = error.read().decode("utf-8", errors="replace")
        try:
            parsed = json.loads(body)
        except json.JSONDecodeError:
            parsed = {"error": body}
        return error.code, parsed, parse_retry_after(error.headers.get("Retry-After"))


def fetch_json(base_url: str, path: str, timeout: float = 30.0) -> dict:
    """GET a JSON endpoint (``/healthz``, ``/specs``, ``/metrics``)."""
    with urllib.request.urlopen(base_url.rstrip("/") + path, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


class _Recorder:
    """Thread-safe accumulation shared by the closed- and open-loop drivers."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.statuses: Dict[int, int] = {}
        self.latencies: List[float] = []
        self.service: List[float] = []
        self.attempts: List[int] = []
        self.responses: Dict[int, dict] = {}
        self.errors: List[str] = []
        self.retries = 0

    def run_one(
        self,
        base_url: str,
        payload: bytes,
        index: int,
        reference_started: float,
        timeout: float,
        max_attempts: int,
    ) -> None:
        """Issue request *index* until it lands (or attempts run out).

        *reference_started* is the ``perf_counter`` instant latency is
        measured from: the first attempt (closed loop) or the scheduled
        arrival time (open loop).  It is NOT reset across retries -- the
        whole point; resetting it per attempt made a saturated server look
        *faster* because every 503 round-trip and Retry-After sleep was
        dropped from the reported latency.
        """
        for attempt in range(1, max_attempts + 1):
            attempt_started = time.perf_counter()
            try:
                status, body, retry_after = post_analyze(base_url, payload, timeout=timeout)
            except (urllib.error.URLError, OSError) as error:
                with self.lock:
                    self.errors.append(f"request {index}: {error}")
                return
            finished = time.perf_counter()
            if status == 503:
                with self.lock:
                    self.statuses[503] = self.statuses.get(503, 0) + 1
                    self.retries += 1
                # an explicit ``Retry-After: 0`` means "retry now", which is
                # not the same as no hint at all -- hence ``is None``
                sleep = retry_after if retry_after is not None else DEFAULT_RETRY_SLEEP_SECONDS
                if sleep > 0:
                    time.sleep(sleep)
                continue
            with self.lock:
                self.statuses[status] = self.statuses.get(status, 0) + 1
                if status == 200:
                    self.latencies.append(finished - reference_started)
                    self.service.append(finished - attempt_started)
                    self.attempts.append(attempt)
                    self.responses[index] = body
                else:
                    self.errors.append(f"request {index}: status {status}: {body.get('error')}")
            return
        with self.lock:
            self.errors.append(f"request {index}: gave up after {max_attempts} attempts")


def run_load(
    base_url: str,
    request: AnalyzeRequest,
    total_requests: int,
    clients: int,
    timeout: float = DEFAULT_TIMEOUT_SECONDS,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
) -> LoadResult:
    """Fire *total_requests* copies of *request* from *clients* threads.

    Closed-loop: each client thread pulls request numbers off a shared
    queue, POSTs, and on a 503 sleeps the server's ``Retry-After`` hint
    before retrying (up to *max_attempts* attempts per request), so every
    request eventually lands unless the server is down.  Latency is measured
    client-side from the request's **first** attempt.
    """
    payload = json.dumps(request.to_dict()).encode("utf-8")
    pending: "queue.Queue[int]" = queue.Queue()
    for index in range(total_requests):
        pending.put(index)
    recorder = _Recorder()

    def client_loop() -> None:
        while True:
            try:
                index = pending.get_nowait()
            except queue.Empty:
                return
            recorder.run_one(
                base_url,
                payload,
                index,
                reference_started=time.perf_counter(),
                timeout=timeout,
                max_attempts=max_attempts,
            )

    threads = [
        threading.Thread(target=client_loop, name=f"bench-client-{i}", daemon=True)
        for i in range(max(1, clients))
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    return LoadResult(
        total_requests=total_requests,
        clients=max(1, clients),
        elapsed_seconds=elapsed,
        statuses=recorder.statuses,
        retries_after_503=recorder.retries,
        latencies_seconds=recorder.latencies,
        responses=recorder.responses,
        errors=recorder.errors,
        service_seconds=recorder.service,
        attempts=recorder.attempts,
        mode="closed",
    )


def vary_request_seed(request: AnalyzeRequest, index: int) -> AnalyzeRequest:
    """Request *index* of a distinct-corpus run: same shape, shifted seed.

    Used to defeat response coalescing when the point of a run is per-request
    compute (scaling measurements) rather than cache behavior -- each request
    then names a different (but same-sized) deterministic corpus.
    """
    return replace(request, suite=replace(request.suite, seed=request.suite.seed + index))


def run_open_load(
    base_url: str,
    request: AnalyzeRequest,
    total_requests: int,
    rate_rps: float,
    timeout: float = DEFAULT_TIMEOUT_SECONDS,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    distinct_seeds: bool = False,
) -> LoadResult:
    """Dispatch *total_requests* on a fixed schedule of *rate_rps* per second.

    Open-loop, coordinated-omission-free: request *i* is *scheduled* at
    ``i / rate_rps`` seconds after the run starts and dispatched on its own
    thread, whether or not earlier requests have finished.  Latency is
    measured from the **intended** send time, so when the server (or the
    generator) falls behind, the backlog shows up in the latency numbers
    instead of silently stretching the arrival schedule.  Dispatch lateness
    is recorded separately (:attr:`LoadResult.send_lateness_seconds`) so a
    starved generator is distinguishable from a slow server.

    *distinct_seeds* gives every request its own suite seed (same corpus
    shape) via :func:`vary_request_seed`, defeating the front door's response
    coalescing when per-request compute is what the run must measure.
    """
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be positive, got {rate_rps!r}")
    payloads = []
    for index in range(total_requests):
        doc = vary_request_seed(request, index) if distinct_seeds else request
        payloads.append(json.dumps(doc.to_dict()).encode("utf-8"))
    recorder = _Recorder()
    lateness: List[float] = []
    lateness_lock = threading.Lock()
    threads: List[threading.Thread] = []
    epoch = time.perf_counter()
    for index in range(total_requests):
        scheduled = epoch + index / rate_rps
        delay = scheduled - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        with lateness_lock:
            lateness.append(max(0.0, time.perf_counter() - scheduled))
        thread = threading.Thread(
            target=recorder.run_one,
            args=(base_url, payloads[index], index),
            kwargs={
                "reference_started": scheduled,
                "timeout": timeout,
                "max_attempts": max_attempts,
            },
            name=f"bench-open-{index}",
            daemon=True,
        )
        threads.append(thread)
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - epoch
    return LoadResult(
        total_requests=total_requests,
        clients=total_requests,  # open loop: every arrival is its own client
        elapsed_seconds=elapsed,
        statuses=recorder.statuses,
        retries_after_503=recorder.retries,
        latencies_seconds=recorder.latencies,
        responses=recorder.responses,
        errors=recorder.errors,
        service_seconds=recorder.service,
        attempts=recorder.attempts,
        mode="open",
        target_rps=rate_rps,
        send_lateness_seconds=lateness,
    )


# ------------------------------------------------------------ bench artifacts
BENCH_FORMAT = "repro.bench.serve/1"


def _percentile_block(values: List[float]) -> dict:
    ordered = sorted(values)
    return {
        "count": len(ordered),
        "p50": percentile(ordered, 50.0) if ordered else None,
        "p90": percentile(ordered, 90.0) if ordered else None,
        "p99": percentile(ordered, 99.0) if ordered else None,
        "max": ordered[-1] if ordered else None,
    }


def bench_artifact(
    result: LoadResult,
    request: AnalyzeRequest,
    metrics_snapshot: Optional[dict] = None,
    meta: Optional[dict] = None,
) -> dict:
    """A machine-readable bench record: throughput, latency, phase times.

    This is the unit of the committed perf trajectory (``BENCH_*.json``):
    one schema-versioned document per recorded run, comparable across
    commits.  Phase times aggregate the per-report timing of every 200
    response; the optional server-side ``/metrics`` snapshot is embedded
    verbatim for queue/compilation context.  The latency block reports the
    first-attempt-anchored numbers; ``service_seconds`` carries the final
    attempt alone, and ``attempts`` how many tries requests needed -- under
    backpressure the gap between the two is the price of the bounded queue.
    """
    phases = {"andersen_seconds": 0.0, "taint_seconds": 0.0, "total_seconds": 0.0}
    programs = 0
    for body in result.responses.values():
        for report in body.get("reports", ()):
            timing = report.get("timing") or {}
            programs += 1
            for key in phases:
                phases[key] += float(timing.get(key, 0.0))
    artifact = {
        "format": BENCH_FORMAT,
        "request": request.to_dict(),
        "load": {
            "mode": result.mode,
            "target_rps": result.target_rps,
            "total_requests": result.total_requests,
            "clients": result.clients,
            "elapsed_seconds": result.elapsed_seconds,
            "ok": result.ok,
            "statuses": {str(k): v for k, v in sorted(result.statuses.items())},
            "retries_after_503": result.retries_after_503,
            "errors": len(result.errors),
        },
        "throughput_rps": result.throughput_rps,
        "latency_seconds": _percentile_block(result.latencies_seconds),
        "service_seconds": _percentile_block(result.service_seconds),
        "attempts": {
            "mean": (sum(result.attempts) / len(result.attempts)) if result.attempts else None,
            "max": max(result.attempts) if result.attempts else None,
        },
        "phases": {"programs_analyzed": programs, **phases},
    }
    if result.mode == "open" and result.send_lateness_seconds:
        artifact["load"]["send_lateness_seconds"] = _percentile_block(
            result.send_lateness_seconds
        )
    if metrics_snapshot is not None:
        artifact["server_metrics"] = metrics_snapshot
    if meta:
        artifact["meta"] = dict(meta)
    return artifact


def write_bench_artifact(path: str, artifact: dict) -> str:
    """Write one bench artifact as pretty-printed JSON; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=1, sort_keys=False)
        handle.write("\n")
    return path


def canonical_reports(response_body: dict) -> List[dict]:
    """The timing-free portion of a wire response's per-program reports."""
    return [
        {key: value for key, value in report.items() if key != "timing"}
        for report in response_body.get("reports", ())
    ]


def verify_against_inprocess(
    result: LoadResult,
    store: SpecStore,
    request: AnalyzeRequest,
    library_program=None,
    interface=None,
) -> Tuple[bool, str]:
    """Check every daemon response against an in-process ``handle_request``.

    Compares the canonical (timing-free) report lists and the resolved spec
    id; returns ``(ok, human-readable detail)``.  This is the acceptance
    check that the warm-worker path is an optimization, not a semantic fork.
    Only meaningful for same-document runs -- a ``distinct_seeds`` open-loop
    run names a different corpus per request and must be verified per
    request instead.
    """
    expected_response = handle_request(
        request, store, library_program=library_program, interface=interface
    )
    expected = [report.canonical() for report in expected_response.result.reports]
    mismatches = 0
    for index, body in sorted(result.responses.items()):
        if body.get("spec_id") != expected_response.spec_id:
            mismatches += 1
        elif canonical_reports(body) != expected:
            mismatches += 1
    if mismatches:
        return False, (
            f"{mismatches}/{len(result.responses)} responses differ from in-process "
            f"handle_request (spec {expected_response.spec_id})"
        )
    return True, (
        f"all {len(result.responses)} responses bit-identical to in-process "
        f"handle_request (spec {expected_response.spec_id})"
    )


__all__ = [
    "BENCH_FORMAT",
    "LoadResult",
    "bench_artifact",
    "canonical_reports",
    "fetch_json",
    "parse_retry_after",
    "post_analyze",
    "run_load",
    "run_open_load",
    "vary_request_seed",
    "verify_against_inprocess",
    "write_bench_artifact",
]
