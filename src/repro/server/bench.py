"""A seeded load generator for the analysis daemon.

``repro bench-serve`` (and ``examples/serve_http.py``) use this module to
fire N concurrent copies of one benchgen-derived
:class:`~repro.service.api.AnalyzeRequest` at a running daemon and report
sustained throughput and client-observed latency.  Because the request
document fully determines its corpus (seeded suite) and the analysis is
deterministic, every response must be **bit-identical** to running
:func:`repro.service.api.handle_request` in-process --
:func:`verify_against_inprocess` asserts exactly that, which is the
end-to-end proof that the warm-worker fast path changes *where* the work
happens, never *what* it computes.

Clients honor backpressure: a ``503`` is counted, then retried after the
server's ``Retry-After`` hint, so a bounded queue shapes the load instead of
failing it.

Example::

    >>> request = AnalyzeRequest(suite=SuiteSpec(count=3, max_statements=50))
    >>> result = run_load("http://127.0.0.1:8080", request, total_requests=50, clients=8)
    >>> result.ok, result.throughput_rps
    (50, 11.3)
"""

from __future__ import annotations

import json
import queue
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.server.metrics import percentile
from repro.service.api import AnalyzeRequest, handle_request
from repro.service.store import SpecStore

DEFAULT_TIMEOUT_SECONDS = 600.0
DEFAULT_MAX_ATTEMPTS = 60


@dataclass
class LoadResult:
    """Everything one load run observed, from the client side of the wire."""

    total_requests: int
    clients: int
    elapsed_seconds: float
    statuses: Dict[int, int]
    retries_after_503: int
    latencies_seconds: List[float]
    #: parsed JSON bodies of the 200 responses, indexed by request number
    responses: Dict[int, dict] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> int:
        return self.statuses.get(200, 0)

    @property
    def throughput_rps(self) -> float:
        return self.ok / self.elapsed_seconds if self.elapsed_seconds > 0 else 0.0

    def latency_percentile(self, fraction: float) -> Optional[float]:
        if not self.latencies_seconds:
            return None
        return percentile(sorted(self.latencies_seconds), fraction)

    def summary(self) -> str:
        lines = [
            f"{self.ok}/{self.total_requests} requests ok from {self.clients} client threads "
            f"in {self.elapsed_seconds:.2f}s ({self.throughput_rps:.1f} req/s)",
        ]
        if self.latencies_seconds:
            lines.append(
                "latency: "
                + ", ".join(
                    f"p{f:g}={self.latency_percentile(f):.3f}s" for f in (50.0, 90.0, 99.0)
                )
            )
        if self.retries_after_503:
            lines.append(f"backpressure: {self.retries_after_503} retries after 503")
        for status, count in sorted(self.statuses.items()):
            if status != 200:
                lines.append(f"status {status}: {count}")
        for error in self.errors[:5]:
            lines.append(f"error: {error}")
        return "\n".join(lines)


def post_analyze(
    base_url: str, payload: bytes, timeout: float = DEFAULT_TIMEOUT_SECONDS
) -> Tuple[int, dict, Optional[float]]:
    """POST one request body; returns ``(status, body, retry_after_seconds)``."""
    http_request = urllib.request.Request(
        base_url.rstrip("/") + "/analyze",
        data=payload,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(http_request, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode("utf-8")), None
    except urllib.error.HTTPError as error:
        body = error.read().decode("utf-8", errors="replace")
        try:
            parsed = json.loads(body)
        except json.JSONDecodeError:
            parsed = {"error": body}
        retry_after = error.headers.get("Retry-After")
        return error.code, parsed, float(retry_after) if retry_after else None


def fetch_json(base_url: str, path: str, timeout: float = 30.0) -> dict:
    """GET a JSON endpoint (``/healthz``, ``/specs``, ``/metrics``)."""
    with urllib.request.urlopen(base_url.rstrip("/") + path, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def run_load(
    base_url: str,
    request: AnalyzeRequest,
    total_requests: int,
    clients: int,
    timeout: float = DEFAULT_TIMEOUT_SECONDS,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
) -> LoadResult:
    """Fire *total_requests* copies of *request* from *clients* threads.

    Each client thread pulls request numbers off a shared queue, POSTs, and
    on a 503 sleeps the server's ``Retry-After`` hint before retrying (up to
    *max_attempts* attempts per request), so every request eventually lands
    unless the server is down.  Latency is measured per successful POST,
    client-side.
    """
    payload = json.dumps(request.to_dict()).encode("utf-8")
    pending: "queue.Queue[int]" = queue.Queue()
    for index in range(total_requests):
        pending.put(index)

    lock = threading.Lock()
    statuses: Dict[int, int] = {}
    latencies: List[float] = []
    responses: Dict[int, dict] = {}
    errors: List[str] = []
    retries = 0

    def client_loop() -> None:
        nonlocal retries
        while True:
            try:
                index = pending.get_nowait()
            except queue.Empty:
                return
            for _attempt in range(max_attempts):
                started = time.perf_counter()
                try:
                    status, body, retry_after = post_analyze(base_url, payload, timeout=timeout)
                except (urllib.error.URLError, OSError) as error:
                    with lock:
                        errors.append(f"request {index}: {error}")
                    break
                elapsed = time.perf_counter() - started
                if status == 503:
                    with lock:
                        statuses[503] = statuses.get(503, 0) + 1
                        retries += 1
                    time.sleep(retry_after if retry_after else 0.1)
                    continue
                with lock:
                    statuses[status] = statuses.get(status, 0) + 1
                    if status == 200:
                        latencies.append(elapsed)
                        responses[index] = body
                    else:
                        errors.append(f"request {index}: status {status}: {body.get('error')}")
                break
            else:
                with lock:
                    errors.append(f"request {index}: gave up after {max_attempts} attempts")

    threads = [
        threading.Thread(target=client_loop, name=f"bench-client-{i}", daemon=True)
        for i in range(max(1, clients))
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    return LoadResult(
        total_requests=total_requests,
        clients=max(1, clients),
        elapsed_seconds=elapsed,
        statuses=statuses,
        retries_after_503=retries,
        latencies_seconds=latencies,
        responses=responses,
        errors=errors,
    )


# ------------------------------------------------------------ bench artifacts
BENCH_FORMAT = "repro.bench.serve/1"


def bench_artifact(
    result: LoadResult,
    request: AnalyzeRequest,
    metrics_snapshot: Optional[dict] = None,
    meta: Optional[dict] = None,
) -> dict:
    """A machine-readable bench record: throughput, latency, phase times.

    This is the unit of the committed perf trajectory (``BENCH_*.json``):
    one schema-versioned document per recorded run, comparable across
    commits.  Phase times aggregate the per-report timing of every 200
    response; the optional server-side ``/metrics`` snapshot is embedded
    verbatim for queue/compilation context.
    """
    ordered = sorted(result.latencies_seconds)
    phases = {"andersen_seconds": 0.0, "taint_seconds": 0.0, "total_seconds": 0.0}
    programs = 0
    for body in result.responses.values():
        for report in body.get("reports", ()):
            timing = report.get("timing") or {}
            programs += 1
            for key in phases:
                phases[key] += float(timing.get(key, 0.0))
    artifact = {
        "format": BENCH_FORMAT,
        "request": request.to_dict(),
        "load": {
            "total_requests": result.total_requests,
            "clients": result.clients,
            "elapsed_seconds": result.elapsed_seconds,
            "ok": result.ok,
            "statuses": {str(k): v for k, v in sorted(result.statuses.items())},
            "retries_after_503": result.retries_after_503,
            "errors": len(result.errors),
        },
        "throughput_rps": result.throughput_rps,
        "latency_seconds": {
            "count": len(ordered),
            "p50": percentile(ordered, 50.0) if ordered else None,
            "p90": percentile(ordered, 90.0) if ordered else None,
            "p99": percentile(ordered, 99.0) if ordered else None,
            "max": ordered[-1] if ordered else None,
        },
        "phases": {"programs_analyzed": programs, **phases},
    }
    if metrics_snapshot is not None:
        artifact["server_metrics"] = metrics_snapshot
    if meta:
        artifact["meta"] = dict(meta)
    return artifact


def write_bench_artifact(path: str, artifact: dict) -> str:
    """Write one bench artifact as pretty-printed JSON; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=1, sort_keys=False)
        handle.write("\n")
    return path


def canonical_reports(response_body: dict) -> List[dict]:
    """The timing-free portion of a wire response's per-program reports."""
    return [
        {key: value for key, value in report.items() if key != "timing"}
        for report in response_body.get("reports", ())
    ]


def verify_against_inprocess(
    result: LoadResult,
    store: SpecStore,
    request: AnalyzeRequest,
    library_program=None,
    interface=None,
) -> Tuple[bool, str]:
    """Check every daemon response against an in-process ``handle_request``.

    Compares the canonical (timing-free) report lists and the resolved spec
    id; returns ``(ok, human-readable detail)``.  This is the acceptance
    check that the warm-worker path is an optimization, not a semantic fork.
    """
    expected_response = handle_request(
        request, store, library_program=library_program, interface=interface
    )
    expected = [report.canonical() for report in expected_response.result.reports]
    mismatches = 0
    for index, body in sorted(result.responses.items()):
        if body.get("spec_id") != expected_response.spec_id:
            mismatches += 1
        elif canonical_reports(body) != expected:
            mismatches += 1
    if mismatches:
        return False, (
            f"{mismatches}/{len(result.responses)} responses differ from in-process "
            f"handle_request (spec {expected_response.spec_id})"
        )
    return True, (
        f"all {len(result.responses)} responses bit-identical to in-process "
        f"handle_request (spec {expected_response.spec_id})"
    )


__all__ = [
    "BENCH_FORMAT",
    "LoadResult",
    "bench_artifact",
    "canonical_reports",
    "fetch_json",
    "post_analyze",
    "run_load",
    "verify_against_inprocess",
    "write_bench_artifact",
]
