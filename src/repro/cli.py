"""The ``repro`` command: the installable entry point of the whole system.

Subcommands cover the serving path end to end, plus the evaluation driver::

    repro learn --store .repro-specs [--cache-dir .repro-cache --workers 4]
    repro analyze --store .repro-specs --count 20 --workers 4
    repro serve-batch --store .repro-specs --request request.json
    repro serve --store .repro-specs --port 8080 --workers 4
    repro serve --store .repro-specs --port 8080 --processes 4
    repro bench-serve --url http://127.0.0.1:8080 --requests 50 --clients 8
    repro bench-serve --url http://127.0.0.1:8080 --mode open --rate 8 --requests 80
    repro fuzz --budget 200 --seed 7 --workers 4 [--shrink]
    repro fuzz --families taint-app --repair      # closed loop: fuzz -> repair -> re-fuzz
    repro repair --report fuzz-report.json --store .repro-specs --verify
    repro plane seed --store .repro-specs --pipeline ground_truth
    repro plane run --store .repro-specs --once [--golden-dir tests/golden]
    repro plane status --store .repro-specs
    repro plane promote|rollback --store .repro-specs --spec <id>
    repro corpus list|verify|replay [--dir tests/golden]
    repro obs tail|summary|trace <id> --journal telemetry.jsonl
    repro experiments fig9a --preset quick        # -> repro.experiments.runner
    repro compact-cache --cache-dir .repro-cache

``learn`` runs Atlas inference (through the execution engine, so the oracle
cache and worker knobs apply) and stores the result as the next version in a
:class:`~repro.service.store.SpecStore`.  ``analyze`` and ``serve-batch``
answer batch taint queries against stored specifications -- ``analyze``
builds the request from flags, ``serve-batch`` reads an
:class:`~repro.service.api.AnalyzeRequest` JSON document (``-`` for stdin).
``serve`` runs the long-running HTTP daemon (:mod:`repro.server`): warm
workers that compile the stored spec once at startup, a bounded queue with
503 backpressure, and hot reload of newly stored specs; ``--processes N``
swaps in the sharded multi-process tier (pre-forked workers behind an
asyncio front door with admission control and request coalescing).
``bench-serve`` load-tests a running daemon and verifies its responses
bit-identical to in-process handling -- ``--mode open`` schedules arrivals
at a fixed ``--rate`` with latency anchored at the intended send time, so
server backlog is never hidden (no coordinated omission).  ``fuzz`` runs a differential fuzzing campaign
(:mod:`repro.diff`): seeded scenario programs checked concrete-vs-static,
divergences shrunk to minimal counterexamples, golden corpus written under
``tests/golden/``.  ``repair`` (and the one-command ``fuzz --repair`` closed
loop) turns those divergences into a repaired specification version
(:mod:`repro.repair`) that a running daemon hot-reloads; ``corpus``
inspects, digest-verifies, and replays golden-corpus entries.  ``plane``
(:mod:`repro.plane`) runs that repair loop *supervised*: each ``run`` cycle
fuzzes the served spec, publishes any repair as an unserved *candidate*,
canaries it (golden-corpus replay plus shadowed traffic), and only promotes
on zero regressions -- rolling back automatically otherwise.  ``status``
prints the store's version states and serving lineage; ``promote`` /
``rollback`` are the operator overrides; ``seed`` bootstraps a store from a
named (deliberately gapped) specification set.

Every subcommand accepts ``--journal PATH`` (default: the ``REPRO_JOURNAL``
environment variable) to tee its telemetry -- engine events plus the trace
spans of :mod:`repro.obs` -- into a durable JSONL journal, and each run is
wrapped in a root ``cli.<command>`` span so one command is one trace.
``repro obs`` reads those journals back: ``tail`` prints (and optionally
follows) the newest entries, ``summary`` aggregates event counts and span
latencies, and ``trace <id>`` draws one trace's span tree with its critical
path marked.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from typing import List, Optional

from repro.engine import InferenceEngine, StreamSink
from repro.engine.cache import compact_cache_file


def _events(progress: bool):
    return StreamSink(sys.stderr) if progress else None


def _journal_path(args) -> Optional[str]:
    """The journal to write (or, for ``obs``, read): flag, then environment."""
    return getattr(args, "journal", None) or os.environ.get("REPRO_JOURNAL") or None


def apply_atlas_overrides(config, clusters=None, budget=None, seed=None):
    """Overlay CLI-style knobs onto an :class:`AtlasConfig`.

    *clusters* is a list of comma-separated class lists (one string per
    cluster).  Shared by ``repro learn`` and ``examples/serve_flows.py`` so
    both derive identical configs -- and therefore identical store keys --
    from identical flags.
    """
    overrides = {}
    if clusters:
        overrides["clusters"] = tuple(
            tuple(name.strip() for name in cluster.split(",") if name.strip())
            for cluster in clusters
        )
    if budget is not None:
        overrides["enumeration_budget"] = budget
    if seed is not None:
        overrides["seed"] = seed
    return dataclasses.replace(config, **overrides) if overrides else config


def _atlas_config(args):
    from repro.experiments.config import FULL_CONFIG, QUICK_CONFIG

    config = (FULL_CONFIG if args.preset == "full" else QUICK_CONFIG).atlas
    return apply_atlas_overrides(
        config, clusters=args.cluster, budget=args.budget, seed=args.seed
    )


# ------------------------------------------------------------------ subcommands
def cmd_learn(args) -> int:
    from repro.library.registry import build_interface, build_library_program
    from repro.service.store import SpecStore

    library = build_library_program()
    interface = build_interface(library)
    engine = InferenceEngine(
        cache_dir=args.cache_dir, workers=args.workers, events=_events(args.progress)
    )
    result = engine.run(_atlas_config(args), library_program=library, interface=interface)
    record = SpecStore(args.store).put(result, library_program=library)
    print(json.dumps(record.to_dict(), sort_keys=True, indent=1))
    return 0


def cmd_analyze(args) -> int:
    from repro.service.api import AnalyzeRequest, SuiteSpec, handle_request
    from repro.service.store import SpecStore

    request = AnalyzeRequest(
        suite=SuiteSpec(
            count=args.count,
            seed=args.seed,
            max_statements=args.max_statements,
            min_statements=args.min_statements,
        ),
        spec_id=args.spec,
        workers=args.workers,
        apps=tuple(args.apps.split(",")) if args.apps else (),
        include_timing=not args.no_timing,
    )
    response = handle_request(
        request,
        SpecStore(args.store),
        events=_events(args.progress),
        solver=args.solver,
        analysis_cache_dir=args.analysis_cache,
    )
    _write_json(response.to_dict(), args.out)
    result = response.result
    sys.stderr.write(
        f"analyzed {len(result.reports)} programs in {result.elapsed_seconds:.2f}s "
        f"({result.executor}, workers={result.workers}): {result.total_flows} flows\n"
    )
    return 0


def cmd_serve_batch(args) -> int:
    from repro.service.api import AnalyzeRequest, handle_request
    from repro.service.store import SpecStore

    if args.request == "-":
        data = json.load(sys.stdin)
    else:
        with open(args.request, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    request = AnalyzeRequest.from_dict(data)
    response = handle_request(request, SpecStore(args.store), events=_events(args.progress))
    _write_json(response.to_dict(), args.out)
    return 0


def cmd_serve(args) -> int:
    import signal

    from repro.engine.events import FanOutSink
    from repro.server import AnalysisServer
    from repro.service.store import SpecStore

    # the journal joins the *server's* event fan-out, not the process-global
    # ambient registry: handler and worker threads already tee their spans
    # into ``pool.events``, so an ambient install would double-write them
    sinks = []
    if args.progress:
        sinks.append(StreamSink(sys.stderr))
    journal = _journal_path(args)
    if journal:
        from repro.obs import JournalSink

        sinks.append(JournalSink(journal))
    events = FanOutSink(sinks) if len(sinks) > 1 else (sinks[0] if sinks else None)
    if args.processes > 0:
        from repro.server import ShardedAnalysisServer

        server = ShardedAnalysisServer(
            SpecStore(args.store),
            host=args.host,
            port=args.port,
            processes=args.processes,
            queue_depth=args.queue_depth,
            poll_interval=args.poll_interval,
            events=events,
            admission_limit=args.admission_limit,
            coalesce=not args.no_coalesce,
            solver=args.solver,
            analysis_cache_dir=args.analysis_cache,
        )
        tier = f"{args.processes} worker processes"
    else:
        server = AnalysisServer(
            SpecStore(args.store),
            host=args.host,
            port=args.port,
            workers=args.workers,
            queue_depth=args.queue_depth,
            poll_interval=args.poll_interval,
            events=events,
            solver=args.solver,
            analysis_cache_dir=args.analysis_cache,
        )
        tier = f"{server.pool.workers} warm worker threads"
    server.start()
    host, port = server.address
    sys.stderr.write(
        f"[serve] listening on http://{host}:{port} "
        f"(spec {server.pool.current_spec_id}, {tier}, "
        f"queue depth {server.pool.queue_capacity})\n"
    )
    if journal:
        sys.stderr.write(f"[serve] journaling telemetry to {journal}\n")
    sys.stderr.flush()

    # SIGTERM (CI, orchestrators) and SIGINT (^C) both exit cleanly
    signal.signal(signal.SIGTERM, lambda *_: server.close())
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    sys.stderr.write("[serve] shut down cleanly\n")
    return 0


def cmd_bench_serve(args) -> int:
    from repro.server.bench import (
        fetch_json,
        run_load,
        run_open_load,
        verify_against_inprocess,
    )
    from repro.service.api import AnalyzeRequest, SuiteSpec
    from repro.service.store import SpecStore

    health = fetch_json(args.url, "/healthz")
    sys.stderr.write(
        f"[bench] daemon at {args.url} healthy (spec {health.get('spec_id')}, "
        f"{health.get('workers')} workers)\n"
    )
    # pin the spec the daemon is serving right now: an unpinned request would
    # make a mid-bench hot reload look like a verification mismatch
    request = AnalyzeRequest(
        suite=SuiteSpec(
            count=args.count,
            seed=args.seed,
            max_statements=args.max_statements,
            min_statements=args.min_statements,
        ),
        spec_id=args.spec if args.spec else health.get("spec_id"),
        workers=args.workers,
    )
    if args.mode == "open":
        result = run_open_load(
            args.url,
            request,
            total_requests=args.requests,
            rate_rps=args.rate,
            distinct_seeds=args.distinct_seeds,
        )
    else:
        result = run_load(args.url, request, total_requests=args.requests, clients=args.clients)
    print(result.summary())

    metrics = fetch_json(args.url, "/metrics")
    specs = metrics.get("specs", {})
    print(
        f"server metrics: {metrics.get('requests', {}).get('total')} requests served, "
        f"{specs.get('compilations')} spec compilations "
        f"across {len(specs.get('compilations_by_worker', {}))} workers, "
        f"{specs.get('hot_reloads')} hot reloads"
    )

    failed = result.ok != args.requests
    if args.store and not args.no_verify:
        if args.mode == "open" and args.distinct_seeds:
            print("verification: skipped (distinct seeds name a different corpus per request)")
        else:
            ok, detail = verify_against_inprocess(result, SpecStore(args.store), request)
            print(f"verification: {detail}")
            failed = failed or not ok
    if args.out:
        from repro.server.bench import bench_artifact, write_bench_artifact

        meta = {
            "url": args.url,
            "spec_id": request.spec_id,
            "cpu_count": os.cpu_count(),
            "server": {
                "workers": health.get("workers"),
                "processes": health.get("processes", 0),
            },
        }
        artifact = bench_artifact(result, request, metrics_snapshot=metrics, meta=meta)
        write_bench_artifact(args.out, artifact)
        sys.stderr.write(f"[bench] wrote {args.out}\n")
    return 1 if failed else 0


def cmd_fuzz(args) -> int:
    from repro.diff import FuzzConfig, run_fuzz, run_guided_fuzz
    from repro.diff.families import DEFAULT_FAMILIES

    families = (
        tuple(name.strip() for name in args.families.split(",") if name.strip())
        if args.families
        else DEFAULT_FAMILIES
    )
    config = FuzzConfig(
        families=families,
        budget=args.budget,
        seed=args.seed,
        workers=args.workers,
        pipeline="store" if args.store else args.pipeline,
        cross_check=not args.no_cross_check,
        engine_check=args.engine_check,
        shrink=not args.no_shrink,
        sample=args.sample,
        guided=args.guided,
    )
    store = None
    if args.store:
        from repro.service.store import SpecStore

        store = SpecStore(args.store)
    if args.guided:
        report = run_guided_fuzz(
            config,
            events=_events(args.progress),
            store=store,
            spec_id=args.spec,
            golden_out=None if args.no_golden else args.golden_out,
            seed_corpus=args.seed_corpus,
        )
    else:
        report = run_fuzz(
            config,
            events=_events(args.progress),
            store=store,
            spec_id=args.spec,
            golden_out=None if args.no_golden else args.golden_out,
        )
    payload = report.to_dict(include_timing=not args.no_timing)
    _write_json(payload, args.out)
    summary = payload["summary"]
    sys.stderr.write(
        f"fuzzed {summary['programs']} programs "
        f"({', '.join(summary['families_covered'])}) in {report.elapsed_seconds:.2f}s "
        f"({report.executor}, workers={config.workers}): "
        f"{summary['concrete_flows']} concrete flows, "
        f"{summary['diverged']} diverged ({summary['shrunk']} shrunk), "
        f"{summary['spurious_flows']} spurious (imprecision, not unsoundness), "
        f"{summary['golden_entries']} golden entries"
        + (
            f"; coverage {summary['coverage_keys']} keys, "
            f"corpus {report.corpus_stats['programs']} programs"
            if args.guided and report.coverage is not None
            else ""
        )
        + (f" -> {report.corpus_path}" if report.corpus_path else "")
        + "\n"
    )
    if args.repair:
        return _run_repair_loop(args, report)
    # exit 0: clean; 2: divergences found (every one shrunk, or shrinking
    # explicitly disabled); 1: shrinking was requested but left divergences
    # unminimized -- the campaign itself failed
    if report.unshrunk and config.shrink:
        return 1
    return 2 if report.diverged else 0


def _run_repair_loop(args, report) -> int:
    """The ``fuzz --repair`` closed loop: repair divergences, re-fuzz, report."""
    from repro.repair import RepairEngine
    from repro.repair.engine import RepairConfig
    from repro.service.store import SpecStore

    from repro.repair.engine import REPAIRABLE_PIPELINES

    if not report.diverged:
        sys.stderr.write("repair: campaign is clean, nothing to repair\n")
        return 0
    if report.config.pipeline not in REPAIRABLE_PIPELINES:
        sys.stderr.write(
            f"repair: pipeline {report.config.pipeline!r} has no specification set to repair "
            f"(repairable: {', '.join(REPAIRABLE_PIPELINES)})\n"
        )
        return 1
    repair_store = args.repair_store or args.store or ".repro-specs"
    engine = RepairEngine(
        store=SpecStore(repair_store),
        cache_dir=args.cache_dir,
        config=RepairConfig(seed=args.seed, workers=args.workers),
        events=_events(args.progress),
    )
    outcome = engine.repair(report, spec_id=args.spec, verify=True)
    return _summarize_repair(outcome, repair_store)


def _summarize_repair(outcome, store_root: str) -> int:
    summary = outcome.to_dict()["summary"]
    line = (
        f"repaired {summary['repaired']}/{summary['divergences']} divergences "
        f"({summary['clusters_relearned']} clusters relearned, "
        f"{summary['oracle_executions']} witnesses executed, "
        f"{summary['oracle_cache_hits']} cache hits, {outcome.executor})"
    )
    if outcome.record is not None:
        line += f" -> {outcome.record.spec_id} (v{outcome.record.version}) in {store_root}"
    if outcome.verification is not None:
        remaining = len(outcome.verification.diverged)
        line += (
            f"; re-fuzz over {outcome.verification.programs} programs: "
            f"{remaining} divergences"
        )
    sys.stderr.write(line + "\n")
    for divergence in outcome.plan.unrepairable:
        sys.stderr.write(
            f"repair: NOT repairable: {divergence.program} {divergence.signature}: "
            f"{divergence.reason}\n"
        )
    if outcome.plan.divergences and outcome.record is None:
        # covers both "no candidate words" and "the oracle refuted every
        # candidate": divergences exist but no repaired version was published
        return 1
    if outcome.verification is not None and outcome.verification.diverged:
        return 1
    if outcome.plan.unrepairable:
        return 1
    return 0


def cmd_repair(args) -> int:
    from repro.repair import RepairEngine
    from repro.repair.engine import REPAIRABLE_PIPELINES, RepairConfig
    from repro.service.store import SpecStore

    if args.report == "-":
        data = json.load(sys.stdin)
    else:
        with open(args.report, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    if data.get("pipeline") not in REPAIRABLE_PIPELINES:
        sys.stderr.write(
            f"repair: pipeline {data.get('pipeline')!r} has no specification set to repair "
            f"(repairable: {', '.join(REPAIRABLE_PIPELINES)})\n"
        )
        return 1
    engine = RepairEngine(
        store=SpecStore(args.store),
        cache_dir=args.cache_dir,
        config=RepairConfig(seed=args.seed, workers=args.workers),
        events=_events(args.progress),
    )
    outcome = engine.repair(data, spec_id=args.spec, verify=args.verify)
    _write_json(outcome.to_dict(include_timing=not args.no_timing), args.out)
    if outcome.no_op and not outcome.plan.divergences:
        sys.stderr.write("repair: report is clean, nothing to repair\n")
        return 0
    return _summarize_repair(outcome, args.store)


def cmd_corpus(args) -> int:
    import os

    from repro.diff.corpus import corpus_files, load_corpus
    from repro.lang.serialize import program_digest, program_from_dict, program_to_dict

    directory = args.dir
    paths = corpus_files(directory)
    if not paths:
        sys.stderr.write(f"corpus: no corpus files under {directory}\n")
        return 1

    if args.action == "list":
        for path in paths:
            print(os.path.basename(path))
            for entry in load_corpus(path):
                digest = program_digest(entry.program)
                print(
                    f"  {entry.name:<24} {entry.kind:<15} {entry.family:<18} "
                    f"seed={entry.seed:<10} statements={entry.program.statement_count():<4} "
                    f"digest={digest[:12]}"
                )
        return 0

    if args.action == "verify":
        problems = []
        for path in paths:
            with open(path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
            for raw_entry in raw["entries"]:
                name = raw_entry["name"]
                # the stored encoding must be the canonical one: decoding and
                # re-encoding with repro.lang.serialize is the identity
                reencoded = program_to_dict(program_from_dict(raw_entry["program"]))
                if reencoded != raw_entry["program"]:
                    problems.append(f"{os.path.basename(path)}: {name}: non-canonical program encoding")
                    continue
                digest = program_digest(program_from_dict(raw_entry["program"]))
                print(f"{name}: ok ({digest[:12]})")
        for problem in problems:
            sys.stderr.write(f"corpus: {problem}\n")
        return 1 if problems else 0

    # replay one entry by id
    from repro.diff.checker import DifferentialChecker, build_pipeline_analyzer
    from repro.library.registry import build_interface, build_library_program

    if not args.id:
        sys.stderr.write("corpus: replay needs --id <entry name> (see `repro corpus list`)\n")
        return 1
    wanted = None
    for path in paths:
        for entry in load_corpus(path):
            if entry.name == args.id:
                wanted = entry
                break
    if wanted is None:
        sys.stderr.write(f"corpus: no entry named {args.id!r} under {directory}\n")
        return 1
    unsupported = set(wanted.flows) - {"ground_truth", "handwritten", "implementation"}
    if unsupported:
        sys.stderr.write(
            f"corpus: cannot rebuild pipelines {sorted(unsupported)} without a store\n"
        )
        return 1
    library = build_library_program()
    interface = build_interface(library)
    checker = DifferentialChecker(
        {
            pipeline: build_pipeline_analyzer(
                pipeline, library_program=library, interface=interface
            )
            for pipeline in wanted.flows
        },
        library_program=library,
    )
    verdict = checker.check_program(
        wanted.program, wanted.name, family=wanted.family, seed=wanted.seed
    )
    payload = verdict.canonical()
    payload["expected_signatures"] = list(wanted.divergence_signatures)
    _write_json(payload, args.out)
    drifted = (
        verdict.concrete != wanted.concrete_flows
        or any(verdict.flows[p] != flows for p, flows in wanted.flows.items())
        or verdict.signatures() != wanted.divergence_signatures
    )
    sys.stderr.write(
        f"replayed {wanted.name}: {len(verdict.concrete)} concrete flows, "
        f"signatures {list(verdict.signatures())} "
        f"({'DRIFTED from the frozen verdict' if drifted else 'matches the frozen verdict'})\n"
    )
    return 1 if drifted else 0


def _require_journal(args) -> Optional[str]:
    """Resolve the journal an ``obs`` command reads; ``None`` prints why."""
    path = _journal_path(args)
    if not path:
        sys.stderr.write("obs: no journal given (--journal PATH or $REPRO_JOURNAL)\n")
        return None
    if not os.path.exists(path):
        sys.stderr.write(f"obs: no journal at {path}\n")
        return None
    return path


def _format_entry(entry) -> str:
    """One journal entry as one ``tail`` line: time, trace prefix, payload."""
    import time as _time

    clock = _time.strftime("%H:%M:%S", _time.localtime(entry.ts))
    clock += f".{int(entry.ts % 1 * 1000):03d}"
    trace = (entry.trace_id or "-")[:8]
    if entry.is_span:
        attrs = " ".join(f"{k}={v}" for k, v in (entry.data.get("attrs") or []))
        detail = (
            f"span {entry.data.get('name', '?')} "
            f"{float(entry.data.get('elapsed_seconds', 0.0)):.4f}s"
        )
        return f"{clock} {trace} {detail}" + (f"  [{attrs}]" if attrs else "")
    pairs = " ".join(
        f"{key}={value}"
        for key, value in entry.data.items()
        if not isinstance(value, (dict, list)) or not value
    )
    return f"{clock} {trace} {entry.event}" + (f"  {pairs}" if pairs else "")


def cmd_obs_tail(args) -> int:
    from repro.obs import parse_journal_line, read_journal

    path = _require_journal(args)
    if path is None:
        return 1
    entries = read_journal(path)
    for entry in entries[-args.lines :] if args.lines > 0 else entries:
        print(_format_entry(entry))
    if not args.follow:
        return 0
    import time as _time

    # follow mode: poll for appended lines (the journal is append-only, so a
    # plain readline loop over the kept-open handle sees every new entry)
    with open(path, "r", encoding="utf-8") as handle:
        handle.seek(0, os.SEEK_END)
        try:
            while True:
                line = handle.readline()
                if not line:
                    _time.sleep(args.interval)
                    continue
                entry = parse_journal_line(line)
                if entry is not None:
                    print(_format_entry(entry), flush=True)
        except KeyboardInterrupt:
            return 0


def cmd_obs_summary(args) -> int:
    from repro.obs import read_journal, render_summary, summarize

    path = _require_journal(args)
    if path is None:
        return 1
    summary = summarize(read_journal(path))
    if args.json:
        _write_json(summary, None)
    else:
        print(render_summary(summary))
    return 0


def cmd_obs_trace(args) -> int:
    from repro.obs import build_trace, read_journal, render_trace, trace_ids

    path = _require_journal(args)
    if path is None:
        return 1
    entries = read_journal(path)

    def list_traces() -> None:
        for trace_id, count in trace_ids(entries):
            sys.stderr.write(f"  {trace_id} ({count} spans)\n")

    if not args.id:
        sys.stderr.write("obs: trace needs an id (traces in this journal:)\n")
        list_traces()
        return 1
    try:
        trace = build_trace(entries, args.id)
    except ValueError as error:
        sys.stderr.write(f"obs: {error}\n")
        list_traces()
        return 1
    print(render_trace(trace))
    return 0


def cmd_plane_run(args) -> int:
    from repro.engine.events import FanOutSink
    from repro.plane import ALL_FAMILIES, CLEAN, PROMOTED, ControlPlane, PlaneConfig
    from repro.service.store import SpecStore

    families = (
        tuple(name.strip() for name in args.families.split(",") if name.strip())
        if args.families
        else ALL_FAMILIES
    )
    config = PlaneConfig(
        families=families,
        budget=args.budget,
        seed=args.seed,
        workers=args.workers,
        shrink=not args.no_shrink,
        shadow_fraction=args.shadow_fraction,
        shadow_requests=args.shadow_requests,
        shadow_programs=args.shadow_programs,
        golden_dir=args.golden_dir,
        cache_dir=args.cache_dir,
        guided_every=args.guided_every,
    )
    # tee the journal into the plane's event fan-out: the ambient install
    # (idempotent, same sink) only receives trace spans, and the deployment
    # trail -- CandidatePublished, CanaryFinished, SpecPromoted/RolledBack --
    # is exactly what a post-mortem reads back from the journal
    sinks = []
    if args.progress:
        sinks.append(StreamSink(sys.stderr))
    journal = _journal_path(args)
    if journal:
        from repro.obs import install_journal

        sinks.append(install_journal(journal))
    events = FanOutSink(sinks) if len(sinks) > 1 else (sinks[0] if sinks else None)
    plane = ControlPlane(SpecStore(args.store), config=config, events=events)
    cycles = 1 if args.once else args.cycles
    outcomes = plane.run(cycles, interval_seconds=args.interval)
    payload = {
        "format": "repro.plane.run/1",
        "store": args.store,
        "cycles": [outcome.to_dict() for outcome in outcomes],
    }
    _write_json(payload, args.out)
    converged = True
    for outcome in outcomes:
        line = f"plane: cycle {outcome.cycle}: {outcome.status}"
        if outcome.candidate:
            line += f" candidate={outcome.candidate}"
        if outcome.lineage:
            line += f" serving={outcome.lineage[0]} depth={len(outcome.lineage)}"
        sys.stderr.write(line + "\n")
        converged = converged and outcome.status in (CLEAN, PROMOTED)
    return 0 if converged else 1


def cmd_plane_status(args) -> int:
    from repro.service.store import SpecStore

    store = SpecStore(args.store)
    states = store.states()
    active = store.latest()
    lineage = (
        [record.spec_id for record in store.lineage(active.spec_id)] if active else []
    )
    payload = {
        "format": "repro.plane.status/1",
        "store": args.store,
        "active_spec_id": active.spec_id if active else None,
        "active_version": active.version if active else None,
        "lineage": lineage,
        "lineage_depth": max(0, len(lineage) - 1),
        "specs": [
            {
                "spec_id": record.spec_id,
                "version": record.version,
                "state": states.get(record.spec_id),
                "parent": record.parent,
                "created_at": record.created_at,
            }
            for record in store.list()
        ],
        "transitions": store.transitions(),
    }
    _write_json(payload, args.out)
    return 0


def cmd_plane_promote(args) -> int:
    from repro.plane import PromotionError, SpecLifecycle
    from repro.service.store import SpecStore, SpecStoreError

    lifecycle = SpecLifecycle(SpecStore(args.store), events=_events(args.progress))
    try:
        record = lifecycle.promote(args.spec)
    except (PromotionError, SpecStoreError) as error:
        sys.stderr.write(f"plane: {error}\n")
        return 1
    sys.stderr.write(f"plane: promoted {record.spec_id} (version {record.version})\n")
    return 0


def cmd_plane_rollback(args) -> int:
    from repro.plane import SpecLifecycle
    from repro.service.store import SpecStore, SpecStoreError

    lifecycle = SpecLifecycle(SpecStore(args.store), events=_events(args.progress))
    try:
        record, restored = lifecycle.rollback(args.spec, reason=args.reason)
    except SpecStoreError as error:
        sys.stderr.write(f"plane: {error}\n")
        return 1
    sys.stderr.write(
        f"plane: rolled back {record.spec_id}; serving "
        f"{restored.spec_id if restored else '(nothing)'}\n"
    )
    return 0


def cmd_plane_seed(args) -> int:
    from repro.plane import seed_store
    from repro.service.store import SpecStore

    record = seed_store(SpecStore(args.store), pipeline=args.pipeline)
    sys.stderr.write(
        f"plane: seeded {args.store} with {record.spec_id} "
        f"({args.pipeline}, version {record.version})\n"
    )
    return 0


def cmd_compact_cache(args) -> int:
    import os

    from repro.engine import CacheCompacted

    if not args.cache_dir and not args.analysis_cache:
        sys.stderr.write("compact-cache: pass --cache-dir and/or --analysis-cache\n")
        return 2
    # telemetry goes to stderr, like every other engine event
    sink = StreamSink(sys.stderr)
    if args.cache_dir:
        path = os.path.join(args.cache_dir, InferenceEngine.CACHE_FILENAME)
        sink.emit(CacheCompacted.from_stats(compact_cache_file(path)))
    if args.analysis_cache:
        from repro.solve import compact_analysis_cache_dir

        for stats in compact_analysis_cache_dir(args.analysis_cache):
            sink.emit(CacheCompacted.from_stats(stats))
    return 0


def _write_json(payload, out: Optional[str]) -> None:
    if out and out != "-":
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)
            handle.write("\n")
    else:
        json.dump(payload, sys.stdout, indent=1)
        sys.stdout.write("\n")


# ------------------------------------------------------------------ arg parsing
def _add_journal_flag(subparser) -> None:
    subparser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="append telemetry (events + trace spans) to this JSONL journal "
        "(default: $REPRO_JOURNAL)",
    )


def _add_solver_flags(subparser) -> None:
    subparser.add_argument(
        "--solver",
        choices=("compiled", "reference"),
        default=None,
        help="analysis engine: 'compiled' (bitset CFL solver + analysis cache) "
        "or 'reference' (default: $REPRO_SOLVER, else reference)",
    )
    subparser.add_argument(
        "--analysis-cache",
        default=None,
        metavar="DIR",
        help="content-addressed analysis result cache directory, compiled "
        "solver only (default: $REPRO_ANALYSIS_CACHE)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Learn points-to specifications once, then serve taint analyses from them.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    learn = commands.add_parser("learn", help="run Atlas inference and store the result")
    learn.add_argument("--store", required=True, help="SpecStore directory")
    learn.add_argument("--cache-dir", default=None, help="persistent oracle cache directory")
    learn.add_argument("--workers", type=int, default=0, help="cluster-inference worker processes")
    learn.add_argument("--preset", choices=["quick", "full"], default="quick")
    learn.add_argument(
        "--cluster",
        action="append",
        default=None,
        metavar="A,B,...",
        help="restrict inference to these clusters (repeatable, comma-separated classes)",
    )
    learn.add_argument("--budget", type=int, default=None, help="enumeration budget override")
    learn.add_argument("--seed", type=int, default=None, help="inference seed override")
    learn.add_argument("--progress", action="store_true", help="stream engine events to stderr")
    _add_journal_flag(learn)
    learn.set_defaults(func=cmd_learn)

    analyze = commands.add_parser("analyze", help="batch-analyze a generated corpus")
    analyze.add_argument("--store", required=True, help="SpecStore directory")
    analyze.add_argument("--spec", default=None, help="spec id (default: latest for the library)")
    analyze.add_argument("--count", type=int, default=20, help="number of generated programs")
    analyze.add_argument("--seed", type=int, default=2018, help="corpus generation seed")
    analyze.add_argument("--max-statements", type=int, default=120)
    analyze.add_argument("--min-statements", type=int, default=30)
    analyze.add_argument("--workers", type=int, default=0, help="analysis worker processes")
    analyze.add_argument("--apps", default=None, help="comma-separated app-name subset")
    analyze.add_argument("--out", default=None, help="write the JSON response here (default stdout)")
    analyze.add_argument("--no-timing", action="store_true", help="omit per-request timing")
    analyze.add_argument("--progress", action="store_true", help="stream analysis events to stderr")
    _add_solver_flags(analyze)
    _add_journal_flag(analyze)
    analyze.set_defaults(func=cmd_analyze)

    serve = commands.add_parser("serve-batch", help="answer an AnalyzeRequest JSON document")
    serve.add_argument("--store", required=True, help="SpecStore directory")
    serve.add_argument("--request", required=True, help="request JSON file ('-' for stdin)")
    serve.add_argument("--out", default=None, help="write the JSON response here (default stdout)")
    serve.add_argument("--progress", action="store_true", help="stream analysis events to stderr")
    _add_journal_flag(serve)
    serve.set_defaults(func=cmd_serve_batch)

    daemon = commands.add_parser(
        "serve", help="run the long-running HTTP analysis daemon (warm workers)"
    )
    daemon.add_argument("--store", required=True, help="SpecStore directory to serve from")
    daemon.add_argument("--host", default="127.0.0.1", help="bind address")
    daemon.add_argument("--port", type=int, default=8080, help="bind port (0 = ephemeral)")
    daemon.add_argument(
        "--workers", type=int, default=2, help="warm worker threads (one compiled analyzer each)"
    )
    daemon.add_argument(
        "--processes",
        type=int,
        default=0,
        help="serve from N pre-forked worker processes behind the asyncio "
        "front door instead of worker threads (0 = threaded tier)",
    )
    daemon.add_argument(
        "--admission-limit",
        type=int,
        default=None,
        help="max /analyze requests in flight before the front door sheds "
        "with 503 (sharded tier only; default queue-depth + 2*processes)",
    )
    daemon.add_argument(
        "--no-coalesce",
        action="store_true",
        help="disable single-flight coalescing of identical in-flight "
        "requests (sharded tier only)",
    )
    daemon.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        help="bounded request queue size; full = 503 + Retry-After",
    )
    daemon.add_argument(
        "--poll-interval",
        type=float,
        default=2.0,
        help="seconds between spec-store polls for hot reload (0 disables)",
    )
    daemon.add_argument("--progress", action="store_true", help="stream server events to stderr")
    _add_solver_flags(daemon)
    _add_journal_flag(daemon)
    daemon.set_defaults(func=cmd_serve)

    bench = commands.add_parser(
        "bench-serve", help="load-test a running daemon and verify its responses"
    )
    bench.add_argument("--url", default="http://127.0.0.1:8080", help="daemon base URL")
    bench.add_argument("--requests", type=int, default=50, help="total requests to fire")
    bench.add_argument("--clients", type=int, default=8, help="concurrent client threads")
    bench.add_argument(
        "--mode",
        choices=("closed", "open"),
        default="closed",
        help="closed: N client threads back to back; open: scheduled "
        "arrivals at --rate rps, latency anchored at the intended send",
    )
    bench.add_argument(
        "--rate",
        type=float,
        default=4.0,
        help="open-loop arrival rate in requests/second",
    )
    bench.add_argument(
        "--distinct-seeds",
        action="store_true",
        help="vary the suite seed per request (defeats response coalescing; "
        "measures per-request analysis cost instead of cache hits)",
    )
    bench.add_argument("--count", type=int, default=5, help="programs per request's suite")
    bench.add_argument("--seed", type=int, default=2018, help="corpus generation seed")
    bench.add_argument("--max-statements", type=int, default=60)
    bench.add_argument("--min-statements", type=int, default=30)
    bench.add_argument("--spec", default=None, help="pin a spec id (default: server's latest)")
    bench.add_argument(
        "--workers", type=int, default=0, help="per-request analysis workers (serialized default)"
    )
    bench.add_argument(
        "--store",
        default=None,
        help="SpecStore directory; when given, verify responses against in-process handling",
    )
    bench.add_argument(
        "--no-verify", action="store_true", help="skip the in-process verification pass"
    )
    bench.add_argument(
        "--out",
        default=None,
        metavar="BENCH.json",
        help="write a schema-versioned bench artifact (throughput, latency "
        "percentiles, phase times, server metrics) here",
    )
    _add_journal_flag(bench)
    bench.set_defaults(func=cmd_bench_serve)

    fuzz = commands.add_parser(
        "fuzz", help="differentially fuzz the analysis pipelines against the interpreter"
    )
    fuzz.add_argument(
        "--families",
        default=None,
        metavar="A,B,...",
        help="comma-separated scenario families (default: the three diff families)",
    )
    fuzz.add_argument("--budget", type=int, default=100, help="number of generated programs")
    fuzz.add_argument("--seed", type=int, default=2018, help="campaign seed")
    fuzz.add_argument("--workers", type=int, default=0, help="checker worker processes")
    fuzz.add_argument(
        "--pipeline",
        choices=["ground_truth", "handwritten", "implementation"],
        default="ground_truth",
        help="primary static pipeline under test (--store overrides with a learned spec)",
    )
    fuzz.add_argument("--store", default=None, help="SpecStore directory: fuzz a learned spec")
    fuzz.add_argument("--spec", default=None, help="spec id within --store (default: latest)")
    fuzz.add_argument(
        "--no-cross-check",
        action="store_true",
        help="skip the handwritten-model (implementation) Andersen cross-check",
    )
    fuzz.add_argument(
        "--engine-check",
        action="store_true",
        help="also run each pipeline through the compiled bitset solver and "
        "report any flow mismatch as an engine-mismatch divergence",
    )
    shrink_flags = fuzz.add_mutually_exclusive_group()
    shrink_flags.add_argument(
        "--shrink",
        action="store_true",
        help="minimize divergent programs (the default; kept for explicit invocations)",
    )
    shrink_flags.add_argument(
        "--no-shrink", action="store_true", help="keep divergent programs at full size"
    )
    fuzz.add_argument(
        "--sample", type=int, default=10, help="passing programs frozen into the golden corpus"
    )
    fuzz.add_argument(
        "--guided",
        action="store_true",
        help="coverage-guided mutation mode: seed from the golden corpus, mutate "
        "coverage-novel programs, admit into a live corpus only on new coverage",
    )
    fuzz.add_argument(
        "--seed-corpus",
        default="tests/golden",
        metavar="DIR",
        help="golden corpus directory guided mode seeds from (default: tests/golden; "
        "a missing directory simply seeds nothing)",
    )
    fuzz.add_argument(
        "--golden-out",
        default="tests/golden",
        help="directory the golden corpus is written to (default: tests/golden)",
    )
    fuzz.add_argument(
        "--no-golden", action="store_true", help="do not write a golden corpus file"
    )
    fuzz.add_argument("--out", default=None, help="write the JSON report here (default stdout)")
    fuzz.add_argument("--no-timing", action="store_true", help="omit timing from the report")
    fuzz.add_argument("--progress", action="store_true", help="stream fuzz events to stderr")
    fuzz.add_argument(
        "--repair",
        action="store_true",
        help="closed loop: repair any divergences into a SpecStore and re-fuzz the repaired spec",
    )
    fuzz.add_argument(
        "--repair-store",
        default=None,
        help="SpecStore the repaired spec is published to (default: --store, else .repro-specs)",
    )
    fuzz.add_argument(
        "--cache-dir", default=None, help="persistent oracle cache for repair learning"
    )
    _add_journal_flag(fuzz)
    fuzz.set_defaults(func=cmd_fuzz)

    repair = commands.add_parser(
        "repair", help="repair spec gaps found by a fuzz campaign and republish"
    )
    repair.add_argument(
        "--report", required=True, help="fuzz report JSON from `repro fuzz --out` ('-' for stdin)"
    )
    repair.add_argument("--store", required=True, help="SpecStore the repaired spec is published to")
    repair.add_argument(
        "--spec",
        default=None,
        help="base spec id for store-pipeline reports (default: latest for the library)",
    )
    repair.add_argument(
        "--cache-dir", default=None, help="persistent oracle cache directory (shared with learn)"
    )
    repair.add_argument("--workers", type=int, default=0, help="cluster-relearning worker processes")
    repair.add_argument("--seed", type=int, default=2018, help="repair learning seed")
    repair.add_argument(
        "--verify",
        action="store_true",
        help="re-fuzz the repaired spec over the originating campaign and assert it is clean",
    )
    repair.add_argument("--out", default=None, help="write the JSON outcome here (default stdout)")
    repair.add_argument("--no-timing", action="store_true", help="omit timing from the outcome")
    repair.add_argument("--progress", action="store_true", help="stream repair events to stderr")
    _add_journal_flag(repair)
    repair.set_defaults(func=cmd_repair)

    plane = commands.add_parser(
        "plane",
        help="supervised repair deployments: campaigns, candidate canaries, promotion",
    )
    plane_commands = plane.add_subparsers(dest="plane_command", required=True)
    plane_run = plane_commands.add_parser(
        "run", help="run supervised cycles: fuzz -> repair -> canary -> promote/rollback"
    )
    plane_run.add_argument("--store", required=True, help="SpecStore directory to supervise")
    plane_run.add_argument(
        "--cache-dir", default=None, help="persistent oracle cache for repair learning"
    )
    plane_run.add_argument(
        "--families",
        default=None,
        metavar="A,B,...",
        help="comma-separated scenario families to cycle through (default: all)",
    )
    plane_run.add_argument(
        "--budget", type=int, default=50, help="programs per campaign cycle"
    )
    plane_run.add_argument("--seed", type=int, default=2018, help="plane seed")
    plane_run.add_argument("--workers", type=int, default=0, help="worker processes")
    plane_run.add_argument(
        "--no-shrink", action="store_true", help="keep divergent programs at full size"
    )
    cycle_flags = plane_run.add_mutually_exclusive_group()
    cycle_flags.add_argument(
        "--once", action="store_true", help="run exactly one cycle (the smoke-job mode)"
    )
    cycle_flags.add_argument(
        "--cycles", type=int, default=1, help="supervised cycles to run"
    )
    plane_run.add_argument(
        "--interval", type=float, default=0.0, help="seconds to sleep between cycles"
    )
    plane_run.add_argument(
        "--guided-every",
        type=int,
        default=0,
        metavar="N",
        help="every Nth campaign cycle runs coverage-guided over all families, "
        "seeded from --golden-dir (0 disables guided rotation)",
    )
    plane_run.add_argument(
        "--shadow-fraction",
        type=float,
        default=0.25,
        help="live-traffic fraction mirrored through a canarying candidate",
    )
    plane_run.add_argument(
        "--shadow-requests",
        type=int,
        default=4,
        help="shadow comparisons per canary (synthetic stream size standalone)",
    )
    plane_run.add_argument(
        "--shadow-programs", type=int, default=2, help="programs per synthetic shadow request"
    )
    plane_run.add_argument(
        "--golden-dir",
        default=None,
        metavar="DIR",
        help="golden corpus to replay as the canary's regression gate",
    )
    plane_run.add_argument("--out", default=None, help="write the cycle JSON here (default stdout)")
    plane_run.add_argument("--progress", action="store_true", help="stream plane events to stderr")
    _add_journal_flag(plane_run)
    plane_run.set_defaults(func=cmd_plane_run)
    plane_status = plane_commands.add_parser(
        "status", help="print version states, serving lineage, and the transition log"
    )
    plane_status.add_argument("--store", required=True, help="SpecStore directory")
    plane_status.add_argument("--out", default=None, help="write the JSON here (default stdout)")
    _add_journal_flag(plane_status)
    plane_status.set_defaults(func=cmd_plane_status)
    plane_promote = plane_commands.add_parser(
        "promote", help="operator override: promote a candidate (payload re-verified)"
    )
    plane_promote.add_argument("--store", required=True, help="SpecStore directory")
    plane_promote.add_argument("--spec", required=True, help="candidate spec id")
    plane_promote.add_argument(
        "--progress", action="store_true", help="stream lifecycle events to stderr"
    )
    _add_journal_flag(plane_promote)
    plane_promote.set_defaults(func=cmd_plane_promote)
    plane_rollback = plane_commands.add_parser(
        "rollback", help="operator override: withdraw a version from service"
    )
    plane_rollback.add_argument("--store", required=True, help="SpecStore directory")
    plane_rollback.add_argument("--spec", required=True, help="spec id to roll back")
    plane_rollback.add_argument(
        "--reason", default="operator rollback", help="recorded transition reason"
    )
    plane_rollback.add_argument(
        "--progress", action="store_true", help="stream lifecycle events to stderr"
    )
    _add_journal_flag(plane_rollback)
    plane_rollback.set_defaults(func=cmd_plane_rollback)
    plane_seed = plane_commands.add_parser(
        "seed", help="bootstrap a store from a named specification set (no inference)"
    )
    plane_seed.add_argument("--store", required=True, help="SpecStore directory")
    plane_seed.add_argument(
        "--pipeline",
        choices=["ground_truth", "handwritten"],
        default="ground_truth",
        help="named specification set to publish as version 1",
    )
    _add_journal_flag(plane_seed)
    plane_seed.set_defaults(func=cmd_plane_seed)

    corpus = commands.add_parser(
        "corpus", help="list, digest-verify, or replay golden-corpus entries"
    )
    corpus.add_argument(
        "action", choices=["list", "verify", "replay"], help="what to do with the corpus"
    )
    corpus.add_argument(
        "--dir", default="tests/golden", help="corpus directory (default: tests/golden)"
    )
    corpus.add_argument("--id", default=None, help="entry name to replay (replay only)")
    corpus.add_argument("--out", default=None, help="replay: write the verdict JSON here")
    _add_journal_flag(corpus)
    corpus.set_defaults(func=cmd_corpus)

    obs = commands.add_parser(
        "obs", help="inspect telemetry journals: tail entries, summarize, draw traces"
    )
    obs_commands = obs.add_subparsers(dest="obs_command", required=True)
    tail = obs_commands.add_parser(
        "tail", help="print the newest journal entries (and optionally follow)"
    )
    tail.add_argument(
        "--lines", type=int, default=20, help="existing entries to print first (0 = all)"
    )
    tail.add_argument(
        "-f", "--follow", action="store_true", help="keep printing entries as they append"
    )
    tail.add_argument(
        "--interval", type=float, default=0.5, help="follow-mode poll interval in seconds"
    )
    _add_journal_flag(tail)
    tail.set_defaults(func=cmd_obs_tail)
    summary = obs_commands.add_parser(
        "summary", help="aggregate event counts and per-span latency percentiles"
    )
    summary.add_argument("--json", action="store_true", help="emit the summary as JSON")
    _add_journal_flag(summary)
    summary.set_defaults(func=cmd_obs_summary)
    trace = obs_commands.add_parser(
        "trace", help="draw one trace's span tree with self-times and the critical path"
    )
    trace.add_argument(
        "id", nargs="?", default=None, help="trace id (any unique prefix; omit to list)"
    )
    _add_journal_flag(trace)
    trace.set_defaults(func=cmd_obs_trace)

    # help-only stub: main() forwards "experiments ..." to the runner before
    # parsing, so this subparser exists purely for the --help listing
    commands.add_parser(
        "experiments", help="regenerate paper tables/figures (repro.experiments.runner)"
    )

    compact = commands.add_parser(
        "compact-cache", help="compact the oracle and/or analysis cache files"
    )
    compact.add_argument("--cache-dir", default=None, help="oracle cache directory to compact")
    compact.add_argument(
        "--analysis-cache",
        default=None,
        metavar="DIR",
        help="analysis result cache directory to compact (every worker shard)",
    )
    _add_journal_flag(compact)
    compact.set_defaults(func=cmd_compact_cache)

    return parser


def _dispatch(args) -> int:
    """Install the ambient journal, open the root span, run the subcommand.

    ``obs`` is the journal's *reader*, so it never writes one; ``serve``
    tees its journal into the server's event fan-out inside :func:`cmd_serve`
    instead (handler and worker threads deliver their spans there directly),
    so neither installs the process-global ambient journal here.
    """
    from repro.obs import trace as _trace

    if args.command == "obs":
        return args.func(args)
    journal = _journal_path(args)
    if journal and args.command != "serve":
        from repro.obs import install_journal

        install_journal(journal)
    with _trace.span(f"cli.{args.command}"):
        return args.func(args)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # ``experiments`` forwards everything verbatim: argparse.REMAINDER only
    # starts capturing at the first positional, so flag-first invocations
    # like ``repro experiments --preset full`` must bypass the subparser
    if argv and argv[0] == "experiments":
        from repro.experiments.runner import main as runner_main

        return runner_main(argv[1:])
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except BrokenPipeError:  # e.g. `repro corpus list | head`: not an error
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
