"""The Android-like framework: source and sink methods.

Source methods return freshly allocated secret objects (device identifiers,
location fixes, contact records, SMS bodies); sink methods consume reference
arguments (SMS text, HTTP payloads, file contents).  The framework classes
are marked as library classes (their internals are not part of the metrics)
but are *never* replaced by inferred specifications -- they are the fixed
endpoints between which flows are measured.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.lang.builder import ClassBuilder
from repro.lang.program import ClassDef, Program
from repro.lang.types import OBJECT

#: (class, method) -> description of the secret the source produces.
SOURCE_METHODS: Dict[Tuple[str, str], str] = {
    ("TelephonyManager", "getDeviceId"): "IMEI device identifier",
    ("TelephonyManager", "getSimSerialNumber"): "SIM serial number",
    ("LocationManager", "getLastKnownLocation"): "GPS location fix",
    ("ContactsProvider", "queryContacts"): "contact record",
    ("SmsInbox", "readMessages"): "SMS message body",
    ("AccountManager", "getAccountName"): "account name",
}

#: (class, method) -> name of the reference parameter that is the sink.
SINK_METHODS: Dict[Tuple[str, str], str] = {
    ("SmsManager", "sendTextMessage"): "text",
    ("HttpConnection", "post"): "payload",
    ("FileOutput", "write"): "data",
    ("Logger", "leak"): "message",
}


def source_methods() -> Tuple[Tuple[str, str], ...]:
    return tuple(SOURCE_METHODS)


def sink_parameters() -> Dict[Tuple[str, str], str]:
    return dict(SINK_METHODS)


def _build_source_class(class_name: str, methods: List[str]) -> ClassDef:
    cls = ClassBuilder(class_name, is_library=True)
    cls.add_method(cls.constructor())
    for method_name in methods:
        cls.add_method(
            cls.method(method_name, return_type="String", doc=f"source: {SOURCE_METHODS[(class_name, method_name)]}")
            .new("secret", "String")
            .ret("secret")
        )
    return cls.build()


def _build_sink_class(class_name: str, methods: List[str]) -> ClassDef:
    cls = ClassBuilder(class_name, is_library=True)
    cls.add_method(cls.constructor())
    for method_name in methods:
        parameter = SINK_METHODS[(class_name, method_name)]
        cls.add_method(
            cls.method(method_name, [(parameter, OBJECT)], doc=f"sink: consumes {parameter}")
        )
    return cls.build()


def build_framework_program() -> Program:
    """The framework classes (sources, sinks, and a few benign services)."""
    sources_by_class: Dict[str, List[str]] = {}
    for (class_name, method_name) in SOURCE_METHODS:
        sources_by_class.setdefault(class_name, []).append(method_name)
    sinks_by_class: Dict[str, List[str]] = {}
    for (class_name, method_name) in SINK_METHODS:
        sinks_by_class.setdefault(class_name, []).append(method_name)

    classes = [
        _build_source_class(class_name, methods) for class_name, methods in sources_by_class.items()
    ]
    classes.extend(
        _build_sink_class(class_name, methods) for class_name, methods in sinks_by_class.items()
    )

    # A benign service producing non-sensitive data, so that apps have
    # plenty of flows that are *not* information leaks.
    benign = ClassBuilder("ResourceManager", is_library=True)
    benign.add_method(benign.constructor())
    benign.add_method(
        benign.method("getString", return_type="String", doc="benign resource string")
        .new("value", "String")
        .ret("value")
    )
    benign.add_method(
        benign.method("getDrawable", return_type=OBJECT, doc="benign resource object")
        .new("value", "Object")
        .ret("value")
    )
    classes.append(benign.build())
    return Program(classes)
