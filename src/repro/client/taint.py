"""Explicit information-flow analysis on top of the points-to closure.

A *flow* is a pair (source method, sink call site): the analysis reports it
when some abstract object allocated inside the source method may be pointed
to by the reference argument of the sink call.  Heap flows (e.g. a secret
stored in a collection and later retrieved) are resolved by the points-to
analysis, so the client's recall depends directly on the library
specifications in use -- exactly the dependency the paper measures in
Figure 9(a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.client.sources_sinks import SINK_METHODS, SOURCE_METHODS
from repro.lang.program import Program
from repro.lang.statements import Call
from repro.pointsto.andersen import AndersenAnalysis
from repro.pointsto.graph import ObjNode, VarNode
from repro.pointsto.relations import PointsToResult


@dataclass(frozen=True)
class Flow:
    """One reported information flow."""

    source_class: str
    source_method: str
    sink_class: str
    sink_method: str
    sink_caller_class: str
    sink_caller_method: str
    sink_statement_index: int

    def describe(self) -> str:  # pragma: no cover - presentation helper
        return (
            f"{self.source_class}.{self.source_method} -> "
            f"{self.sink_class}.{self.sink_method} "
            f"(at {self.sink_caller_class}.{self.sink_caller_method}:{self.sink_statement_index})"
        )


@dataclass
class InformationFlowReport:
    """The result of running the client on one program."""

    flows: FrozenSet[Flow]
    points_to: PointsToResult

    def flow_count(self) -> int:
        return len(self.flows)


class InformationFlowAnalysis:
    """Runs the points-to analysis and extracts source-to-sink flows."""

    def __init__(self, program: Program):
        self.program = program

    # ------------------------------------------------------------------ helpers
    def _secret_objects(self, result: PointsToResult) -> Dict[ObjNode, Tuple[str, str]]:
        """Abstract objects allocated inside source methods, keyed to their source."""
        secrets: Dict[ObjNode, Tuple[str, str]] = {}
        for node in result.graph.nodes:
            if isinstance(node, ObjNode) and (node.class_name, node.method_name) in SOURCE_METHODS:
                secrets[node] = (node.class_name, node.method_name)
        return secrets

    def _sink_call_sites(self):
        """All client call sites that invoke a sink method, with the argument variable."""
        for cls in self.program:
            if cls.is_library:
                continue
            for method in cls.methods.values():
                for index, statement in enumerate(method.body):
                    if not isinstance(statement, Call) or statement.base is None:
                        continue
                    for (sink_class, sink_method), parameter in SINK_METHODS.items():
                        if statement.method_name != sink_method or not statement.args:
                            continue
                        signature_params = self._sink_signature_params(sink_class, sink_method)
                        position = signature_params.index(parameter) if parameter in signature_params else 0
                        if position >= len(statement.args):
                            continue
                        argument = VarNode(cls.name, method.name, statement.args[position])
                        yield sink_class, sink_method, cls.name, method.name, index, argument

    def _sink_signature_params(self, sink_class: str, sink_method: str) -> Tuple[str, ...]:
        if not self.program.has_class(sink_class):
            return ()
        ref = self.program.resolve_method(sink_class, sink_method)
        if ref is None:
            return ()
        return self.program.method_def(ref).parameter_names()

    # ------------------------------------------------------------------ main entry
    def run(self, points_to: Optional[PointsToResult] = None) -> InformationFlowReport:
        """Run the client; *points_to* may be supplied to reuse an existing closure."""
        result = points_to if points_to is not None else AndersenAnalysis(self.program).run()
        secrets = self._secret_objects(result)

        flows: Set[Flow] = set()
        for sink_class, sink_method, caller_class, caller_method, index, argument in self._sink_call_sites():
            # bulk query: filter the known secret objects against the sink
            # argument instead of materializing its full points-to set
            for obj in result.points_to_among(argument, secrets):
                source = secrets[obj]
                flows.add(
                    Flow(
                        source_class=source[0],
                        source_method=source[1],
                        sink_class=sink_class,
                        sink_method=sink_method,
                        sink_caller_class=caller_class,
                        sink_caller_method=caller_method,
                        sink_statement_index=index,
                    )
                )
        return InformationFlowReport(flows=frozenset(flows), points_to=result)
