"""The static explicit information-flow client (Section 6, "Information flow client").

The client mirrors the paper's setup: an Android-like framework provides
*source* methods (device identifiers, location, contacts, SMS content) and
*sink* methods (SMS sending, network output, file output).  A flow is
reported when an object allocated inside a source method may reach a
reference argument of a sink call, with heap flows resolved by the points-to
analysis -- so the quality of the library specifications directly determines
the client's recall.
"""

from repro.client.sources_sinks import (
    SINK_METHODS,
    SOURCE_METHODS,
    build_framework_program,
    sink_parameters,
    source_methods,
)
from repro.client.taint import Flow, InformationFlowAnalysis, InformationFlowReport

__all__ = [
    "Flow",
    "InformationFlowAnalysis",
    "InformationFlowReport",
    "SINK_METHODS",
    "SOURCE_METHODS",
    "build_framework_program",
    "sink_parameters",
    "source_methods",
]
