"""Structured progress and telemetry events for the execution engine.

Every stage of an engine run emits a typed event (run started, cluster
started/finished, cache flushed, run finished) to a pluggable *sink*.  Sinks
are deliberately tiny -- a single ``emit`` method -- so telemetry can be
routed anywhere: collected in memory for tests, rendered to a terminal for
progress display, or fanned out to several consumers at once.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import IO, List, Optional, Tuple

# ------------------------------------------------------------- dropped events
# Sinks must not raise (see EventSink), so when one misbehaves -- or a
# journal's disk fills -- the event is *dropped*, counted here, and the run
# continues.  The counter is process-wide and surfaced by the server's
# Prometheus exposition as ``repro_obs_dropped_events_total``.
_DROP_LOCK = threading.Lock()
_DROPPED_EVENTS = 0


def count_dropped_event(count: int = 1) -> None:
    """Record that *count* telemetry events were lost instead of delivered."""
    global _DROPPED_EVENTS
    with _DROP_LOCK:
        _DROPPED_EVENTS += count


def dropped_event_count() -> int:
    """How many telemetry events this process has dropped so far."""
    with _DROP_LOCK:
        return _DROPPED_EVENTS


# ---------------------------------------------------------------------- events
@dataclass(frozen=True)
class EngineEvent:
    """Base class of all engine telemetry events."""


@dataclass(frozen=True)
class RunStarted(EngineEvent):
    """Emitted once when ``Atlas.run`` begins."""

    num_clusters: int
    executor: str
    cache_entries: int  # warm-start size of the oracle cache


@dataclass(frozen=True)
class ClusterStarted(EngineEvent):
    """Emitted when a cluster is dispatched to its executor.

    For the serial executor this is the moment inference begins; for the
    parallel executor it is enqueue time -- all clusters are dispatched up
    front and a worker may pick the job up later.  ``ClusterFinished``
    carries the actual per-cluster wall time either way.
    """

    index: int
    classes: Tuple[str, ...]


@dataclass(frozen=True)
class ClusterFinished(EngineEvent):
    """Emitted when a cluster's inference completes."""

    index: int
    classes: Tuple[str, ...]
    elapsed_seconds: float
    positives: int
    fsa_states: int
    oracle_queries: int  # queries attributable to this cluster
    cache_hits: int


@dataclass(frozen=True)
class CacheFlushed(EngineEvent):
    """Emitted when a persistent cache writes its pending entries to disk."""

    path: str
    entries_written: int
    total_entries: int


@dataclass(frozen=True)
class RunFinished(EngineEvent):
    """Emitted once when ``Atlas.run`` completes."""

    num_clusters: int
    elapsed_seconds: float
    oracle_queries: int
    cache_hits: int
    hit_rate: float
    witnesses_executed: int


@dataclass(frozen=True)
class CacheCompacted(EngineEvent):
    """Emitted when an append-only cache file is compacted in place."""

    path: str
    lines_before: int
    lines_after: int
    superseded_dropped: int = 0
    malformed_dropped: int = 0

    @classmethod
    def from_stats(cls, stats) -> "CacheCompacted":
        """Build the event from a :class:`repro.engine.cache.CompactionStats`."""
        return cls(
            path=stats.path,
            lines_before=stats.lines_before,
            lines_after=stats.lines_after,
            superseded_dropped=stats.superseded_dropped,
            malformed_dropped=stats.malformed_dropped,
        )


@dataclass(frozen=True)
class BatchStarted(EngineEvent):
    """Emitted once when a batch analysis begins."""

    num_programs: int
    executor: str
    workers: int


@dataclass(frozen=True)
class AnalysisStarted(EngineEvent):
    """Emitted when one client program is dispatched for analysis.

    As with :class:`ClusterStarted`, the parallel scheduler dispatches every
    program up front; :class:`AnalysisFinished` carries the per-request wall
    time measured inside the worker.
    """

    index: int
    program: str


@dataclass(frozen=True)
class AnalysisFinished(EngineEvent):
    """Emitted when one client program's flow report is ready."""

    index: int
    program: str
    elapsed_seconds: float
    flows: int
    andersen_seconds: float
    taint_seconds: float


@dataclass(frozen=True)
class BatchFinished(EngineEvent):
    """Emitted once when a batch analysis completes."""

    num_programs: int
    elapsed_seconds: float
    total_flows: int


@dataclass(frozen=True)
class FuzzStarted(EngineEvent):
    """Emitted once when a differential fuzzing campaign begins."""

    budget: int
    families: Tuple[str, ...]
    pipeline: str
    executor: str
    workers: int
    seed: int


@dataclass(frozen=True)
class ProgramChecked(EngineEvent):
    """Emitted when one generated program has been differentially checked."""

    index: int
    program: str
    family: str
    statements: int
    concrete_flows: int
    diverged: bool


@dataclass(frozen=True)
class DivergenceShrunk(EngineEvent):
    """Emitted when a divergent program has been minimized.

    ``statements_before``/``statements_after`` measure the greedy deletion;
    ``steps`` counts the accepted deletions across all shrink passes.
    """

    program: str
    signatures: Tuple[str, ...]
    statements_before: int
    statements_after: int
    steps: int


@dataclass(frozen=True)
class FuzzFinished(EngineEvent):
    """Emitted once when a differential fuzzing campaign completes."""

    programs: int
    diverged: int
    shrunk: int
    elapsed_seconds: float
    golden_entries: int


@dataclass(frozen=True)
class CorpusSeeded(EngineEvent):
    """Emitted once when a guided campaign has loaded its seed corpus."""

    source: str  # directory (or label) the seeds came from
    entries: int  # number of seed programs admitted to the queue
    families: Tuple[str, ...]


@dataclass(frozen=True)
class CoverageGrown(EngineEvent):
    """Emitted when a checked program adds semantic coverage.

    The program is admitted into the live corpus; ``origin`` records where it
    came from (``seed:<name>``, ``fresh:<family>`` or a mutation operator).
    """

    index: int
    program: str
    origin: str
    new_keys: int
    total_keys: int
    corpus_size: int


@dataclass(frozen=True)
class RepairStarted(EngineEvent):
    """Emitted once when a counterexample-guided repair run begins."""

    pipeline: str  # the diverged pipeline being repaired
    divergences: int  # divergence instances ingested from the fuzz report
    words: int  # targeted candidate words extracted from the traces
    clusters: int  # implicated method clusters to re-learn
    executor: str
    workers: int


@dataclass(frozen=True)
class MethodRelearned(EngineEvent):
    """Emitted when one implicated cluster's specifications are re-learned.

    ``words`` counts the injected counterexample-derived candidates,
    ``positives`` the oracle-confirmed examples RPNI actually learned from.
    """

    index: int
    classes: Tuple[str, ...]
    words: int
    positives: int
    fsa_states: int
    oracle_queries: int
    elapsed_seconds: float


@dataclass(frozen=True)
class SpecRepaired(EngineEvent):
    """Emitted when a repaired specification is published to the store."""

    spec_id: str
    version: int
    base: str  # what was repaired: a spec id, or a named pipeline
    fsa_states: int
    fsa_transitions: int
    counterexamples: int  # divergence instances that drove the repair


@dataclass(frozen=True)
class RepairVerified(EngineEvent):
    """Emitted when the post-repair verification re-fuzz completes."""

    spec_id: str
    programs: int
    divergences: int
    clean: bool


@dataclass(frozen=True)
class SpecCompiled(EngineEvent):
    """Emitted when a server worker compiles a stored spec into an analyzer.

    In a healthy ``repro serve`` daemon this fires once per worker at
    startup (plus once per worker per hot reload or explicitly pinned spec
    id) -- *never* once per request.  The server's ``/metrics`` endpoint
    counts these, which is how "specs are compiled once per worker" is
    asserted rather than assumed.
    """

    worker: str
    spec_id: str
    elapsed_seconds: float


@dataclass(frozen=True)
class SpecReloaded(EngineEvent):
    """Emitted when the server's store poller observes a newer latest spec.

    Workers pick the new spec up lazily before their next request; in-flight
    requests keep the analyzer they started with.
    """

    previous_spec_id: str
    spec_id: str


@dataclass(frozen=True)
class CampaignStarted(EngineEvent):
    """Emitted when the control plane starts one scheduled fuzz campaign."""

    cycle: int
    spec_id: str  # the served spec under test
    families: Tuple[str, ...]
    budget: int
    seed: int


@dataclass(frozen=True)
class CampaignFinished(EngineEvent):
    """Emitted when one scheduled campaign completes."""

    cycle: int
    spec_id: str
    programs: int
    diverged: int
    elapsed_seconds: float


@dataclass(frozen=True)
class CandidatePublished(EngineEvent):
    """Emitted when a repair lands in the store as an unserved candidate."""

    spec_id: str
    parent: str  # the incumbent the candidate was repaired from
    version: int
    counterexamples: int


@dataclass(frozen=True)
class CanaryStarted(EngineEvent):
    """Emitted when a candidate enters its canary evaluation."""

    candidate: str
    incumbent: str
    golden_entries: int
    shadow_fraction: float


@dataclass(frozen=True)
class ShadowCompared(EngineEvent):
    """Emitted per shadowed request: incumbent vs. candidate flow reports.

    The incumbent's response was already served; the comparison is purely
    observational, so a mismatch here never affects a live client.
    """

    candidate: str
    programs: int
    mismatches: int


@dataclass(frozen=True)
class CanaryFinished(EngineEvent):
    """Emitted when a candidate's canary evaluation completes."""

    candidate: str
    incumbent: str
    passed: bool
    golden_regressions: int
    shadow_requests: int
    shadow_mismatches: int


@dataclass(frozen=True)
class SpecPromoted(EngineEvent):
    """Emitted when a candidate passes its canary and becomes servable."""

    spec_id: str
    version: int
    parent: str


@dataclass(frozen=True)
class SpecRolledBack(EngineEvent):
    """Emitted when a version is withdrawn from service.

    ``restored_spec_id`` is what ``latest`` falls back to (empty when the
    store has no remaining servable version).
    """

    spec_id: str
    reason: str
    restored_spec_id: str


# ----------------------------------------------------------------------- sinks
class EventSink:
    """Receives engine events; implementations must not raise."""

    def emit(self, event: EngineEvent) -> None:
        raise NotImplementedError


class NullSink(EventSink):
    """Discards every event (the default when no sink is configured)."""

    def emit(self, event: EngineEvent) -> None:
        pass


class CollectingSink(EventSink):
    """Stores events in a list -- used by tests and post-run inspection."""

    def __init__(self) -> None:
        self.events: List[EngineEvent] = []

    def emit(self, event: EngineEvent) -> None:
        self.events.append(event)

    def of_type(self, event_type) -> List[EngineEvent]:
        return [event for event in self.events if isinstance(event, event_type)]


class StreamSink(EventSink):
    """Renders events as human-readable progress lines on a text stream."""

    def __init__(self, stream: IO[str], prefix: str = "[engine] "):
        self.stream = stream
        self.prefix = prefix

    def emit(self, event: EngineEvent) -> None:
        try:
            line = _format_event(event)
            if line is not None:
                self.stream.write(f"{self.prefix}{line}\n")
                self.stream.flush()
        except (OSError, ValueError):  # closed/broken stream: drop, don't abort
            count_dropped_event()


class FanOutSink(EventSink):
    """Broadcasts each event to several sinks, isolating their failures.

    The ``EventSink`` contract says implementations must not raise, but a
    fan-out is exactly where one misbehaving consumer could otherwise abort
    an entire engine run mid-cluster.  Each delivery is therefore guarded:
    a raising sink loses that one event (counted via
    :func:`count_dropped_event`) and the remaining sinks still receive it.
    """

    def __init__(self, sinks: List[EventSink]):
        self.sinks = list(sinks)

    def emit(self, event: EngineEvent) -> None:
        for sink in self.sinks:
            try:
                sink.emit(event)
            except Exception:
                count_dropped_event()


def _format_event(event: EngineEvent) -> Optional[str]:
    """One progress line per event type (``None`` suppresses the event)."""
    if isinstance(event, RunStarted):
        return (
            f"run started: {event.num_clusters} clusters, executor={event.executor}, "
            f"warm cache entries={event.cache_entries}"
        )
    if isinstance(event, ClusterStarted):
        return f"cluster {event.index} started: {'+'.join(event.classes)}"
    if isinstance(event, ClusterFinished):
        return (
            f"cluster {event.index} finished: {'+'.join(event.classes)} "
            f"in {event.elapsed_seconds:.2f}s "
            f"({event.positives} positives, {event.fsa_states} states, "
            f"{event.oracle_queries} queries, {event.cache_hits} hits)"
        )
    if isinstance(event, CacheFlushed):
        return f"cache flushed: {event.entries_written} new entries -> {event.path} ({event.total_entries} total)"
    if isinstance(event, CacheCompacted):
        return (
            f"cache compacted: {event.path}: {event.lines_before} -> {event.lines_after} lines "
            f"({event.superseded_dropped} superseded, {event.malformed_dropped} malformed)"
        )
    if isinstance(event, BatchStarted):
        return (
            f"batch started: {event.num_programs} programs, "
            f"executor={event.executor}, workers={event.workers}"
        )
    if isinstance(event, AnalysisStarted):
        return f"analysis {event.index} started: {event.program}"
    if isinstance(event, AnalysisFinished):
        return (
            f"analysis {event.index} finished: {event.program} "
            f"in {event.elapsed_seconds:.3f}s "
            f"({event.flows} flows, andersen {event.andersen_seconds:.3f}s, "
            f"taint {event.taint_seconds:.3f}s)"
        )
    if isinstance(event, BatchFinished):
        return (
            f"batch finished: {event.num_programs} programs in "
            f"{event.elapsed_seconds:.2f}s, {event.total_flows} flows"
        )
    if isinstance(event, FuzzStarted):
        return (
            f"fuzz started: budget={event.budget}, families={','.join(event.families)}, "
            f"pipeline={event.pipeline}, executor={event.executor}, "
            f"workers={event.workers}, seed={event.seed}"
        )
    if isinstance(event, ProgramChecked):
        verdict = "DIVERGED" if event.diverged else "ok"
        return (
            f"checked {event.index}: {event.program} [{event.family}] "
            f"{event.statements} statements, {event.concrete_flows} concrete flows: {verdict}"
        )
    if isinstance(event, DivergenceShrunk):
        return (
            f"shrunk {event.program}: {event.statements_before} -> {event.statements_after} "
            f"statements in {event.steps} deletions ({'; '.join(event.signatures)})"
        )
    if isinstance(event, FuzzFinished):
        return (
            f"fuzz finished: {event.programs} programs in {event.elapsed_seconds:.2f}s, "
            f"{event.diverged} diverged ({event.shrunk} shrunk), "
            f"{event.golden_entries} golden entries"
        )
    if isinstance(event, CorpusSeeded):
        return (
            f"corpus seeded: {event.entries} entries from {event.source} "
            f"(families={','.join(event.families)})"
        )
    if isinstance(event, CoverageGrown):
        return (
            f"coverage grown {event.index}: {event.program} [{event.origin}] "
            f"+{event.new_keys} keys ({event.total_keys} total, "
            f"corpus {event.corpus_size})"
        )
    if isinstance(event, RepairStarted):
        return (
            f"repair started: pipeline={event.pipeline}, {event.divergences} divergences, "
            f"{event.words} targeted words, {event.clusters} clusters, "
            f"executor={event.executor}, workers={event.workers}"
        )
    if isinstance(event, MethodRelearned):
        return (
            f"relearned cluster {event.index}: {'+'.join(event.classes)} "
            f"in {event.elapsed_seconds:.2f}s "
            f"({event.words} injected words, {event.positives} positives, "
            f"{event.fsa_states} states, {event.oracle_queries} queries)"
        )
    if isinstance(event, SpecRepaired):
        return (
            f"spec repaired: {event.spec_id} (v{event.version}, base {event.base}) "
            f"{event.fsa_states} states / {event.fsa_transitions} transitions, "
            f"driven by {event.counterexamples} counterexamples"
        )
    if isinstance(event, RepairVerified):
        verdict = "clean" if event.clean else f"{event.divergences} divergences remain"
        return f"repair verified: {event.spec_id} over {event.programs} programs: {verdict}"
    if isinstance(event, SpecCompiled):
        return (
            f"spec compiled: {event.spec_id} on {event.worker} "
            f"in {event.elapsed_seconds:.2f}s"
        )
    if isinstance(event, SpecReloaded):
        return f"spec reloaded: {event.previous_spec_id} -> {event.spec_id}"
    if isinstance(event, CampaignStarted):
        return (
            f"campaign {event.cycle} started: spec {event.spec_id}, "
            f"families={','.join(event.families)}, budget={event.budget}, "
            f"seed={event.seed}"
        )
    if isinstance(event, CampaignFinished):
        return (
            f"campaign {event.cycle} finished: spec {event.spec_id}, "
            f"{event.programs} programs in {event.elapsed_seconds:.2f}s, "
            f"{event.diverged} diverged"
        )
    if isinstance(event, CandidatePublished):
        return (
            f"candidate published: {event.spec_id} (v{event.version}, "
            f"parent {event.parent}, {event.counterexamples} counterexamples)"
        )
    if isinstance(event, CanaryStarted):
        return (
            f"canary started: {event.candidate} vs incumbent {event.incumbent} "
            f"({event.golden_entries} golden entries, "
            f"shadow fraction {event.shadow_fraction:g})"
        )
    if isinstance(event, ShadowCompared):
        verdict = "MISMATCH" if event.mismatches else "match"
        return (
            f"shadow compared: {event.candidate} on {event.programs} programs: "
            f"{verdict} ({event.mismatches} mismatches)"
        )
    if isinstance(event, CanaryFinished):
        verdict = "PASS" if event.passed else "FAIL"
        return (
            f"canary finished: {event.candidate}: {verdict} "
            f"({event.golden_regressions} golden regressions, "
            f"{event.shadow_mismatches}/{event.shadow_requests} shadow mismatches)"
        )
    if isinstance(event, SpecPromoted):
        return f"spec promoted: {event.spec_id} (v{event.version}, parent {event.parent})"
    if isinstance(event, SpecRolledBack):
        restored = event.restored_spec_id or "none"
        return (
            f"spec rolled back: {event.spec_id} ({event.reason}); "
            f"serving {restored}"
        )
    if isinstance(event, RunFinished):
        return (
            f"run finished: {event.num_clusters} clusters in {event.elapsed_seconds:.2f}s, "
            f"{event.oracle_queries} oracle queries, "
            f"{100 * event.hit_rate:.1f}% cache hits, "
            f"{event.witnesses_executed} witnesses executed"
        )
    return None


__all__ = [
    "AnalysisFinished",
    "AnalysisStarted",
    "BatchFinished",
    "BatchStarted",
    "CacheCompacted",
    "CacheFlushed",
    "CampaignFinished",
    "CampaignStarted",
    "CanaryFinished",
    "CanaryStarted",
    "CandidatePublished",
    "ClusterFinished",
    "ClusterStarted",
    "CollectingSink",
    "CorpusSeeded",
    "CoverageGrown",
    "DivergenceShrunk",
    "EngineEvent",
    "EventSink",
    "FanOutSink",
    "count_dropped_event",
    "dropped_event_count",
    "FuzzFinished",
    "FuzzStarted",
    "MethodRelearned",
    "NullSink",
    "ProgramChecked",
    "RepairStarted",
    "RepairVerified",
    "RunFinished",
    "RunStarted",
    "ShadowCompared",
    "SpecCompiled",
    "SpecPromoted",
    "SpecRepaired",
    "SpecReloaded",
    "SpecRolledBack",
    "StreamSink",
]
