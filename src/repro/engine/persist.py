"""JSON persistence for learned artifacts.

Serializes :class:`~repro.specs.fsa.FSA` automata and whole
:class:`~repro.learn.pipeline.AtlasResult` runs so that experiments can be
warm-started (load yesterday's learned specifications instead of re-running
inference) and learned specs can be inspected or diffed outside the process
that produced them.

The FSA encoding is *canonical* -- states, accepting sets, and transitions
are sorted -- so two structurally identical automata serialize to identical
dictionaries, which is what the serial-vs-parallel equivalence tests compare.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Dict, List, Optional, Union

from repro.engine.cache import decode_variable, decode_word, encode_variable, encode_word
from repro.lang.program import Program
from repro.specs.fsa import FSA
from repro.specs.variables import LibraryInterface, SpecVariable

_VARIABLE_PREFIX = "v:"
_STRING_PREFIX = "s:"
_INT_PREFIX = "i:"


# --------------------------------------------------------------------- symbols
def encode_symbol(symbol) -> str:
    """Encode one FSA alphabet symbol (spec variable, string, or int)."""
    if isinstance(symbol, SpecVariable):
        return _VARIABLE_PREFIX + encode_variable(symbol)
    if isinstance(symbol, str):
        return _STRING_PREFIX + symbol
    if isinstance(symbol, int):
        return _INT_PREFIX + str(symbol)
    raise TypeError(f"cannot serialize FSA symbol of type {type(symbol).__name__}")


def decode_symbol(text: str):
    if text.startswith(_VARIABLE_PREFIX):
        return decode_variable(text[len(_VARIABLE_PREFIX):])
    if text.startswith(_STRING_PREFIX):
        return text[len(_STRING_PREFIX):]
    if text.startswith(_INT_PREFIX):
        return int(text[len(_INT_PREFIX):])
    raise ValueError(f"unknown symbol encoding {text!r}")


# ------------------------------------------------------------------------- FSA
def fsa_to_dict(fsa: FSA) -> Dict:
    """A canonical (sorted) dictionary encoding of an automaton."""
    return {
        "initial": fsa.initial,
        "accepting": sorted(fsa.accepting),
        "transitions": sorted(
            [source, encode_symbol(symbol), target]
            for source, symbol, target in fsa.transitions()
        ),
    }


def fsa_from_dict(data: Dict) -> FSA:
    fsa = FSA(initial=data["initial"], accepting=data["accepting"])
    for source, symbol, target in data["transitions"]:
        fsa.add_transition(source, decode_symbol(symbol), target)
    return fsa


def fsa_equal(left: FSA, right: FSA) -> bool:
    """Structural equality via the canonical encoding."""
    return fsa_to_dict(left) == fsa_to_dict(right)


def save_fsa(fsa: FSA, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(fsa_to_dict(fsa), handle, indent=1)


def load_fsa(path: str) -> FSA:
    with open(path, "r", encoding="utf-8") as handle:
        return fsa_from_dict(json.load(handle))


# ----------------------------------------------------------------- AtlasResult
def atlas_result_to_dict(result) -> Dict:
    """Encode a full inference run (config, per-cluster outcomes, automaton)."""
    config = asdict(result.config)
    config["clusters"] = [list(cluster) for cluster in result.config.clusters]
    return {
        "format": "repro.engine.atlas-result/1",
        "config": config,
        "elapsed_seconds": result.elapsed_seconds,
        "oracle_stats": asdict(result.oracle_stats),
        "fsa": fsa_to_dict(result.fsa),
        "positives": sorted(list(encode_word(word)) for word in result.positives),
        "clusters": [
            {
                "classes": list(cluster.classes),
                "positives": sorted(list(encode_word(word)) for word in cluster.positives),
                "fsa": fsa_to_dict(cluster.fsa),
                "sampling_stats": asdict(cluster.sampling_stats),
                "rpni_stats": asdict(cluster.rpni_stats),
                "enumeration_stats": (
                    asdict(cluster.enumeration_stats)
                    if cluster.enumeration_stats is not None
                    else None
                ),
            }
            for cluster in result.clusters
        ],
    }


def atlas_result_from_dict(data: Dict, interface: Optional[LibraryInterface] = None):
    """Rebuild an :class:`AtlasResult` from its dictionary encoding.

    When *interface* is given the code-fragment specification program is
    regenerated from the loaded automaton (generation is deterministic);
    otherwise ``spec_program`` is left empty.
    """
    from repro.learn.enumerate import EnumerationStats
    from repro.learn.oracle import OracleStats
    from repro.learn.pipeline import AtlasConfig, AtlasResult, ClusterResult
    from repro.learn.rpni import RPNIStats
    from repro.learn.sampler import SamplingStats
    from repro.specs.codegen import generate_code_fragments

    config_data = dict(data["config"])
    config_data["clusters"] = tuple(tuple(cluster) for cluster in config_data["clusters"])
    config = AtlasConfig(**config_data)

    clusters = []
    for entry in data["clusters"]:
        clusters.append(
            ClusterResult(
                classes=tuple(entry["classes"]),
                positives={decode_word(word) for word in entry["positives"]},
                fsa=fsa_from_dict(entry["fsa"]),
                sampling_stats=SamplingStats(**entry["sampling_stats"]),
                rpni_stats=RPNIStats(**entry["rpni_stats"]),
                enumeration_stats=(
                    EnumerationStats(**entry["enumeration_stats"])
                    if entry["enumeration_stats"] is not None
                    else None
                ),
            )
        )

    fsa = fsa_from_dict(data["fsa"])
    spec_program = (
        generate_code_fragments(fsa, interface) if interface is not None else Program([])
    )
    return AtlasResult(
        config=config,
        clusters=clusters,
        fsa=fsa,
        spec_program=spec_program,
        oracle_stats=OracleStats(**data["oracle_stats"]),
        positives={decode_word(word) for word in data["positives"]},
        elapsed_seconds=data["elapsed_seconds"],
    )


def save_atlas_result(result, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(atlas_result_to_dict(result), handle, indent=1)


def load_atlas_result(path: str, interface: Optional[LibraryInterface] = None):
    with open(path, "r", encoding="utf-8") as handle:
        return atlas_result_from_dict(json.load(handle), interface=interface)


__all__ = [
    "atlas_result_from_dict",
    "atlas_result_to_dict",
    "decode_symbol",
    "encode_symbol",
    "fsa_equal",
    "fsa_from_dict",
    "fsa_to_dict",
    "load_atlas_result",
    "load_fsa",
    "save_atlas_result",
    "save_fsa",
]
