"""The Atlas execution engine: parallel, persistently cached inference.

The paper's headline cost is oracle work -- synthesizing and executing
witness unit tests.  This subsystem makes that cost pay off across runs and
across cores:

* :mod:`repro.engine.cache` -- a content-addressed oracle result store keyed
  by ``(library fingerprint, initialization, word)`` with an in-memory layer
  over an append-only JSON-lines file.
* :mod:`repro.engine.executor` -- serial and process-pool cluster execution
  with deterministic seeds and cluster-order merging (parallel runs produce
  bit-identical automata).
* :mod:`repro.engine.events` -- structured progress/telemetry events with
  pluggable sinks.
* :mod:`repro.engine.persist` -- JSON serialization of learned automata and
  whole inference runs for warm-starting and inspection.

:class:`InferenceEngine` ties the pieces together: it opens the persistent
cache for the library being learned, picks an executor, runs the pipeline,
and flushes new oracle answers back to disk.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.cache import (
    CompactionStats,
    InMemoryCache,
    PersistentCache,
    compact_cache_file,
    open_oracle_cache,
    program_fingerprint,
)
from repro.engine.events import (
    AnalysisFinished,
    AnalysisStarted,
    BatchFinished,
    BatchStarted,
    CacheCompacted,
    CacheFlushed,
    ClusterFinished,
    ClusterStarted,
    CollectingSink,
    DivergenceShrunk,
    EngineEvent,
    EventSink,
    FanOutSink,
    FuzzFinished,
    FuzzStarted,
    MethodRelearned,
    NullSink,
    ProgramChecked,
    RepairStarted,
    RepairVerified,
    RunFinished,
    RunStarted,
    SpecCompiled,
    SpecReloaded,
    SpecRepaired,
    StreamSink,
)
from repro.engine.executor import (
    ClusterExecutor,
    ClusterJob,
    ClusterOutcome,
    ParallelExecutor,
    ParallelTaskExecutor,
    SerialExecutor,
    SerialTaskExecutor,
    TaskExecutor,
    make_executor,
    make_task_executor,
)
from repro.engine.persist import (
    fsa_equal,
    fsa_from_dict,
    fsa_to_dict,
    load_atlas_result,
    load_fsa,
    save_atlas_result,
    save_fsa,
)

import os


class InferenceEngine:
    """Run Atlas inference with persistent caching and optional parallelism.

    ``cache_dir`` names a directory holding the shared oracle cache file
    (``oracle-cache.jsonl``); omit it for a purely in-memory run.  ``workers``
    selects the executor: ``<= 1`` runs serially, ``> 1`` fans clusters out
    to that many worker processes.

    Example -- a cached, parallel run with live progress::

        >>> import sys
        >>> from repro.engine import InferenceEngine, StreamSink
        >>> from repro.learn import AtlasConfig
        >>> engine = InferenceEngine(
        ...     cache_dir=".repro-cache", workers=4, events=StreamSink(sys.stderr)
        ... )
        >>> result = engine.run(AtlasConfig())

    A second ``engine.run`` with an unchanged library and config answers
    every oracle query from the cache:
    ``result.oracle_stats.executions == 0``.
    """

    CACHE_FILENAME = "oracle-cache.jsonl"

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        workers: int = 0,
        events: Optional[EventSink] = None,
    ):
        self.cache_dir = cache_dir
        self.workers = workers
        self.events = events if events is not None else NullSink()
        self.last_cache: Optional[PersistentCache] = None

    # ------------------------------------------------------------------ helpers
    def cache_path(self) -> Optional[str]:
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir, self.CACHE_FILENAME)

    def open_cache(self, library_program, initialization: str) -> Optional[PersistentCache]:
        path = self.cache_path()
        if path is None:
            return None
        return open_oracle_cache(path, library_program, initialization=initialization)

    # ------------------------------------------------------------------ running
    def run(self, config=None, library_program=None, interface=None, cache=None):
        """Run the full Atlas pipeline under this engine's cache and executor.

        *cache* lets a caller share one already-open :class:`PersistentCache`
        instance across several runs/oracles on the same file (two instances
        on one file cannot see each other's unflushed in-memory entries);
        when omitted, the engine opens its own from ``cache_dir``.
        """
        from repro.learn.pipeline import Atlas, AtlasConfig

        config = config if config is not None else AtlasConfig()
        if cache is None and self.cache_dir is not None:
            if library_program is None:
                from repro.library.registry import build_library_program

                library_program = build_library_program()
            cache = self.open_cache(library_program, config.initialization)
        atlas = Atlas(
            library_program,
            interface,
            config,
            cache=cache if cache is not None else True,
        )
        executor = make_executor(self.workers)
        try:
            result = atlas.run(executor=executor, events=self.events)
        finally:
            if cache is not None:
                written = cache.flush()
                self.events.emit(
                    CacheFlushed(
                        path=cache.path,
                        entries_written=written,
                        total_entries=len(cache),
                    )
                )
                self.last_cache = cache
        return result


__all__ = [
    "AnalysisFinished",
    "AnalysisStarted",
    "BatchFinished",
    "BatchStarted",
    "CacheCompacted",
    "CacheFlushed",
    "ClusterExecutor",
    "ClusterFinished",
    "ClusterJob",
    "ClusterOutcome",
    "ClusterStarted",
    "CollectingSink",
    "CompactionStats",
    "DivergenceShrunk",
    "EngineEvent",
    "EventSink",
    "FanOutSink",
    "FuzzFinished",
    "FuzzStarted",
    "InMemoryCache",
    "InferenceEngine",
    "MethodRelearned",
    "NullSink",
    "ParallelExecutor",
    "ProgramChecked",
    "ParallelTaskExecutor",
    "PersistentCache",
    "RepairStarted",
    "RepairVerified",
    "RunFinished",
    "RunStarted",
    "SerialExecutor",
    "SerialTaskExecutor",
    "SpecCompiled",
    "SpecReloaded",
    "SpecRepaired",
    "StreamSink",
    "TaskExecutor",
    "compact_cache_file",
    "fsa_equal",
    "fsa_from_dict",
    "fsa_to_dict",
    "load_atlas_result",
    "load_fsa",
    "make_executor",
    "make_task_executor",
    "open_oracle_cache",
    "program_fingerprint",
    "save_atlas_result",
    "save_fsa",
]
