"""Cluster execution strategies for the Atlas pipeline.

``Atlas.run`` drives its per-cluster inference work through an *executor*.
Two strategies are provided:

* :class:`SerialExecutor` runs clusters in order inside the calling process,
  sharing the parent oracle (and thus its cache) across clusters -- this is
  the classic behavior.
* :class:`ParallelExecutor` fans independent clusters out to worker
  processes.  Each worker receives the parent's oracle-cache snapshot, runs
  one cluster with its deterministic per-cluster seed, and sends back the
  cluster result together with its oracle-stat deltas and newly discovered
  cache entries; the parent merges everything in cluster order, so the final
  FSA (and generated specification program) is bit-identical to a serial run.

Determinism rests on two facts: per-cluster seeds are derived from the run
seed and the cluster index (never from completion order), and the oracle is a
pure function of ``(word, initialization, library)`` -- caching only avoids
re-execution, it never changes an answer.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.engine.events import ClusterFinished, ClusterStarted, EventSink, NullSink
from repro.learn.oracle import OracleStats
from repro.obs import trace as _trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pipeline imports us lazily)
    from repro.learn.pipeline import Atlas, ClusterResult

Word = tuple


@dataclass(frozen=True)
class ClusterJob:
    """One unit of executor work: infer specifications for one cluster."""

    index: int
    classes: Tuple[str, ...]
    seed: int


@dataclass
class ClusterOutcome:
    """What an executor hands back for one cluster, in cluster order."""

    job: ClusterJob
    result: "ClusterResult"
    elapsed_seconds: float = 0.0
    #: oracle-stat deltas attributable to this cluster (parallel workers only;
    #: the serial executor mutates the parent stats in place).
    worker_stats: Optional[OracleStats] = None
    #: cache entries discovered by a worker (empty for the serial executor,
    #: whose clusters write straight into the parent cache).
    cache_entries: Dict[Word, bool] = field(default_factory=dict)


class ClusterExecutor:
    """Strategy interface: run every job and return outcomes in job order."""

    name = "abstract"

    def run(self, atlas: "Atlas", jobs: Sequence[ClusterJob], events: EventSink) -> List[ClusterOutcome]:
        raise NotImplementedError


class SerialExecutor(ClusterExecutor):
    """Run clusters one after another on the calling process's oracle."""

    name = "serial"

    def run(self, atlas: "Atlas", jobs: Sequence[ClusterJob], events: EventSink) -> List[ClusterOutcome]:
        outcomes: List[ClusterOutcome] = []
        for job in jobs:
            events.emit(ClusterStarted(index=job.index, classes=job.classes))
            queries_before = atlas.oracle.stats.queries
            hits_before = atlas.oracle.stats.cache_hits
            started = time.perf_counter()
            with _trace.span("engine.cluster", classes="+".join(job.classes)):
                result = atlas.run_cluster(job.classes, job.seed)
            elapsed = time.perf_counter() - started
            events.emit(
                ClusterFinished(
                    index=job.index,
                    classes=job.classes,
                    elapsed_seconds=elapsed,
                    positives=len(result.positives),
                    fsa_states=result.fsa.num_states,
                    oracle_queries=atlas.oracle.stats.queries - queries_before,
                    cache_hits=atlas.oracle.stats.cache_hits - hits_before,
                )
            )
            outcomes.append(ClusterOutcome(job=job, result=result, elapsed_seconds=elapsed))
        return outcomes


# ---------------------------------------------------------------------- worker
def run_cluster_job(
    config,
    library_program,
    interface,
    classes: Tuple[str, ...],
    seed: int,
    cache_snapshot: Dict[Word, bool],
) -> Tuple["ClusterResult", OracleStats, Dict[Word, bool], float]:
    """Run one cluster in a fresh Atlas seeded with *cache_snapshot*.

    Returns the cluster result, the oracle stats accumulated by this job, the
    cache entries not present in the snapshot, and the elapsed wall time.
    Module-level (and argument-only) so it is picklable for worker processes
    and directly testable in-process.
    """
    from repro.learn.pipeline import Atlas  # deferred: avoids an import cycle

    atlas = Atlas(library_program, interface, config)
    atlas.oracle.seed_cache(cache_snapshot)
    started = time.perf_counter()
    result = atlas.run_cluster(classes, seed)
    elapsed = time.perf_counter() - started
    new_entries = {
        word: answer
        for word, answer in atlas.oracle.cached_results().items()
        if word not in cache_snapshot
    }
    return result, atlas.oracle.stats, new_entries, elapsed


_WORKER_STATE: dict = {}


def _init_worker(config, library_program, interface, cache_snapshot, obs_state=None) -> None:
    """Per-process initializer: ship the heavy, job-invariant state once."""
    _WORKER_STATE["config"] = config
    _WORKER_STATE["library_program"] = library_program
    _WORKER_STATE["interface"] = interface
    _WORKER_STATE["cache_snapshot"] = cache_snapshot
    _trace.adopt(obs_state)


def _worker_run_cluster(classes: Tuple[str, ...], seed: int):
    with _trace.span("engine.cluster", classes="+".join(classes)):
        return run_cluster_job(
            _WORKER_STATE["config"],
            _WORKER_STATE["library_program"],
            _WORKER_STATE["interface"],
            classes,
            seed,
            _WORKER_STATE["cache_snapshot"],
        )


class ParallelExecutor(ClusterExecutor):
    """Fan independent clusters out to a pool of worker processes."""

    name = "parallel"

    def __init__(self, max_workers: Optional[int] = None):
        self.max_workers = max_workers

    def _pool_size(self, num_jobs: int) -> int:
        workers = self.max_workers if self.max_workers else (os.cpu_count() or 1)
        return max(1, min(workers, num_jobs))

    def run(self, atlas: "Atlas", jobs: Sequence[ClusterJob], events: EventSink) -> List[ClusterOutcome]:
        if not jobs:
            return []
        events = events or NullSink()
        snapshot = atlas.oracle.cached_results()
        outcomes: Dict[int, ClusterOutcome] = {}
        with ProcessPoolExecutor(
            max_workers=self._pool_size(len(jobs)),
            initializer=_init_worker,
            # _trace.capture() ships the parent's trace context and journal
            # path, so worker-side spans join the same trace and journal.
            initargs=(
                atlas.config,
                atlas.library_program,
                atlas.interface,
                snapshot,
                _trace.capture(),
            ),
        ) as pool:
            futures = {}
            for job in jobs:
                events.emit(ClusterStarted(index=job.index, classes=job.classes))
                futures[pool.submit(_worker_run_cluster, job.classes, job.seed)] = job
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    job = futures[future]
                    result, worker_stats, new_entries, elapsed = future.result()
                    events.emit(
                        ClusterFinished(
                            index=job.index,
                            classes=job.classes,
                            elapsed_seconds=elapsed,
                            positives=len(result.positives),
                            fsa_states=result.fsa.num_states,
                            oracle_queries=worker_stats.queries,
                            cache_hits=worker_stats.cache_hits,
                        )
                    )
                    outcomes[job.index] = ClusterOutcome(
                        job=job,
                        result=result,
                        elapsed_seconds=elapsed,
                        worker_stats=worker_stats,
                        cache_entries=new_entries,
                    )
        # Merge worker results back into the parent in deterministic cluster
        # order: stats accumulate and fresh oracle answers enter the parent
        # cache (persisting them if the backend is disk-backed).
        ordered = [outcomes[job.index] for job in jobs]
        for outcome in ordered:
            if outcome.worker_stats is not None:
                atlas.oracle.stats.merge(outcome.worker_stats)
            if outcome.cache_entries:
                atlas.oracle.seed_cache(outcome.cache_entries)
        return ordered


# ------------------------------------------------------------- generic mapping
# The cluster executors above are specific to Atlas inference.  The service
# layer (batch client analysis) needs the same serial/process-pool split for a
# different unit of work, so the generic strategy lives here too: run a
# picklable function over a list of payloads, sharing one heavy payload across
# workers, and return results in payload order regardless of completion order.

_TASK_STATE: dict = {}


def _init_task_worker(fn, shared, obs_state=None) -> None:
    """Per-process initializer: ship the task function and shared state once."""
    _TASK_STATE["fn"] = fn
    _TASK_STATE["shared"] = shared
    _trace.adopt(obs_state)


def _run_task(index: int, payload):
    return index, _TASK_STATE["fn"](_TASK_STATE["shared"], payload)


class TaskExecutor:
    """Strategy interface: map ``fn(shared, payload)`` over payloads in order.

    ``on_result(index, result)`` fires as results arrive (completion order for
    the parallel strategy); the returned list is always in payload order, so
    downstream merging is deterministic either way.
    """

    name = "abstract"

    def map(self, fn, shared, payloads: Sequence, on_result=None) -> List:
        raise NotImplementedError


class SerialTaskExecutor(TaskExecutor):
    """Run every task in order on the calling process."""

    name = "serial"

    def map(self, fn, shared, payloads: Sequence, on_result=None) -> List:
        results = []
        for index, payload in enumerate(payloads):
            result = fn(shared, payload)
            if on_result is not None:
                on_result(index, result)
            results.append(result)
        return results


class ParallelTaskExecutor(TaskExecutor):
    """Fan tasks out to a pool of worker processes.

    *fn* must be a module-level function and *shared*/payloads/results must be
    picklable; the shared state is shipped once per worker process via the
    pool initializer rather than once per task.
    """

    name = "parallel"

    def __init__(self, max_workers: Optional[int] = None):
        self.max_workers = max_workers

    def _pool_size(self, num_tasks: int) -> int:
        workers = self.max_workers if self.max_workers else (os.cpu_count() or 1)
        return max(1, min(workers, num_tasks))

    def map(self, fn, shared, payloads: Sequence, on_result=None) -> List:
        if not payloads:
            return []
        results: Dict[int, object] = {}
        with ProcessPoolExecutor(
            max_workers=self._pool_size(len(payloads)),
            initializer=_init_task_worker,
            initargs=(fn, shared, _trace.capture()),
        ) as pool:
            pending = {
                pool.submit(_run_task, index, payload)
                for index, payload in enumerate(payloads)
            }
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index, result = future.result()
                    if on_result is not None:
                        on_result(index, result)
                    results[index] = result
        return [results[index] for index in range(len(payloads))]


def make_task_executor(workers: int = 0) -> TaskExecutor:
    """Factory: ``workers <= 1`` selects the serial strategy."""
    if workers and workers > 1:
        return ParallelTaskExecutor(max_workers=workers)
    return SerialTaskExecutor()


def make_executor(workers: int = 0, max_workers: Optional[int] = None) -> ClusterExecutor:
    """Factory: ``workers <= 1`` selects the serial strategy."""
    if max_workers is None:
        max_workers = workers
    if workers and workers > 1:
        return ParallelExecutor(max_workers=max_workers)
    return SerialExecutor()


__all__ = [
    "ClusterExecutor",
    "ClusterJob",
    "ClusterOutcome",
    "ParallelExecutor",
    "ParallelTaskExecutor",
    "SerialExecutor",
    "SerialTaskExecutor",
    "TaskExecutor",
    "make_executor",
    "make_task_executor",
    "run_cluster_job",
]
