"""Content-addressed, persistent oracle result store.

The oracle's answer for a candidate word is fully determined by four
inputs: the word itself, the variable-initialization strategy, the library
implementation the witness runs against, and the interpreter step budget
(exceeding it fails the witness).  The cache therefore keys every entry by
``(library fingerprint, initialization, max_steps, word)`` -- a second run
with an unchanged library answers every repeated query from disk without
executing a single witness, while any edit to the library changes the
fingerprint and transparently invalidates the stored answers.

The on-disk format is JSON lines (one entry per line, append-only), which
survives crashes mid-write (a truncated last line is skipped on load) and
lets several runs with different fingerprints share one file.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.lang.pretty import pretty_program
from repro.lang.program import Program
from repro.learn.oracle import DEFAULT_MAX_STEPS, DictCache
from repro.specs.variables import SpecVariable

Word = Tuple[SpecVariable, ...]

#: Re-exported so engine users need one import for both backends.
InMemoryCache = DictCache

_FIELD_SEPARATOR = "|"


# ------------------------------------------------------------------ fingerprint
def program_fingerprint(program: Program) -> str:
    """A stable content hash of a library implementation.

    The fingerprint is the SHA-256 of the pretty-printed program, so it is
    insensitive to object identity but changes whenever any statement,
    signature, or class of the library changes.
    """
    rendered = pretty_program(program)
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()


# ------------------------------------------------------------------ word codec
def encode_variable(variable: SpecVariable) -> str:
    """Encode a specification variable as a compact, reversible string."""
    return _FIELD_SEPARATOR.join(
        (variable.kind, variable.class_name, variable.method_name, variable.name)
    )


def decode_variable(text: str) -> SpecVariable:
    kind, class_name, method_name, name = text.split(_FIELD_SEPARATOR)
    return SpecVariable(class_name=class_name, method_name=method_name, kind=kind, name=name)


def encode_word(word: Word) -> Tuple[str, ...]:
    return tuple(encode_variable(variable) for variable in word)


def decode_word(encoded) -> Word:
    return tuple(decode_variable(text) for text in encoded)


# ------------------------------------------------------------------ persistent
class PersistentCache:
    """A two-layer oracle cache: an in-memory dict over a JSON-lines file.

    The backend satisfies the :class:`repro.learn.oracle.WitnessOracle` cache
    interface (``get``/``put``/``items``).  Lookups always hit the in-memory
    layer; writes go to memory immediately and are buffered for the disk
    layer until :meth:`flush` (or ``close``/context-manager exit) appends
    them to the file.  Entries recorded under a different library fingerprint
    or initialization strategy are preserved in the file but invisible to
    this instance.
    """

    def __init__(
        self,
        path: str,
        fingerprint: str,
        initialization: str = "instantiation",
        max_steps: int = DEFAULT_MAX_STEPS,
    ):
        self.path = str(path)
        self.fingerprint = fingerprint
        self.initialization = initialization
        self.max_steps = max_steps
        self._memory: Dict[Word, bool] = {}
        self._pending: Dict[Word, bool] = {}
        self._load()

    # -------------------------------------------------------------- interface
    def get(self, word: Word) -> Optional[bool]:
        return self._memory.get(word)

    def put(self, word: Word, result: bool) -> None:
        if self._memory.get(word) == result:
            return
        self._memory[word] = result
        self._pending[word] = result

    def items(self) -> Iterator[Tuple[Word, bool]]:
        return iter(self._memory.items())

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, word: Word) -> bool:
        return word in self._memory

    # -------------------------------------------------------------- disk layer
    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue  # truncated trailing line from an interrupted run
                if entry.get("fp") != self.fingerprint:
                    continue
                if entry.get("init") != self.initialization:
                    continue
                if entry.get("steps") != self.max_steps:
                    continue
                try:
                    word = decode_word(entry["word"])
                except (KeyError, ValueError):
                    continue
                self._memory[word] = bool(entry["result"])

    def flush(self) -> int:
        """Append pending entries to the file; returns how many were written."""
        if not self._pending:
            return 0
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            for word, result in self._pending.items():
                handle.write(
                    json.dumps(
                        {
                            "fp": self.fingerprint,
                            "init": self.initialization,
                            "steps": self.max_steps,
                            "word": encode_word(word),
                            "result": result,
                        }
                    )
                    + "\n"
                )
        written = len(self._pending)
        self._pending.clear()
        return written

    def close(self) -> None:
        self.flush()

    @property
    def pending_entries(self) -> int:
        return len(self._pending)

    def compact(self) -> "CompactionStats":
        """Flush pending writes, then compact the backing file in place."""
        self.flush()
        return compact_cache_file(self.path)

    # ---------------------------------------------------------- context manager
    def __enter__(self) -> "PersistentCache":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()


# ------------------------------------------------------------------ compaction
@dataclass(frozen=True)
class CompactionStats:
    """What a cache-file compaction did."""

    path: str
    lines_before: int
    lines_after: int
    malformed_dropped: int
    superseded_dropped: int

    @property
    def lines_dropped(self) -> int:
        return self.lines_before - self.lines_after


def compact_cache_file(path: str) -> CompactionStats:
    """Rewrite an append-only JSON-lines cache file without superseded lines.

    An append-only store accumulates one line per ``put``; a key written twice
    (or a line corrupted by an interrupted run) leaves dead weight that every
    subsequent load must scan.  Compaction keeps the *last* entry per key
    ``(fingerprint, initialization, max_steps, word)`` -- matching the
    load-time semantics, where later lines win -- preserves first-seen key
    order, and replaces the file atomically (write to a temporary file in the
    same directory, then ``os.replace``) so a crash mid-compaction never
    loses data.  Entries of every fingerprint sharing the file are preserved.

    Compaction is safe against crashes, not against concurrent *writers*:
    lines appended by another process between the read pass and the replace
    are lost.  Run it when no other run is flushing this cache (the runner's
    ``--compact-cache`` therefore compacts after its experiments finish).
    """
    if not os.path.exists(path):
        return CompactionStats(
            path=path, lines_before=0, lines_after=0, malformed_dropped=0, superseded_dropped=0
        )

    lines_before = 0
    malformed = 0
    entries: Dict[Tuple, str] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            lines_before += 1
            try:
                entry = json.loads(line)
                key = (
                    entry["fp"],
                    entry["init"],
                    entry["steps"],
                    tuple(entry["word"]),
                )
                bool(entry["result"])
            except (json.JSONDecodeError, KeyError, TypeError):
                malformed += 1
                continue
            # the last line for a key wins, but the key keeps its first-seen
            # position in the rewritten file (dict update preserves insertion)
            entries[key] = line

    directory = os.path.dirname(path) or "."
    descriptor, temp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".compact-", dir=directory
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            for line in entries.values():
                handle.write(line + "\n")
        os.replace(temp_path, path)
    except BaseException:
        if os.path.exists(temp_path):
            os.unlink(temp_path)
        raise
    return CompactionStats(
        path=path,
        lines_before=lines_before,
        lines_after=len(entries),
        malformed_dropped=malformed,
        superseded_dropped=lines_before - malformed - len(entries),
    )


def open_oracle_cache(
    path: str,
    library_program: Program,
    initialization: str = "instantiation",
    max_steps: int = DEFAULT_MAX_STEPS,
) -> PersistentCache:
    """Open the persistent oracle cache for *library_program* at *path*."""
    return PersistentCache(
        path,
        fingerprint=program_fingerprint(library_program),
        initialization=initialization,
        max_steps=max_steps,
    )


__all__ = [
    "CompactionStats",
    "InMemoryCache",
    "PersistentCache",
    "compact_cache_file",
    "decode_variable",
    "decode_word",
    "encode_variable",
    "encode_word",
    "open_oracle_cache",
    "program_fingerprint",
]
